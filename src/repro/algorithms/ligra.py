"""A miniature Ligra: the frontier-based graph-processing abstraction.

Blelloch's bio in the paper: "His work on graph-processing frameworks,
such as Ligra and GraphChi and Aspen, have set a foundation for
large-scale parallel graph processing."

Ligra's whole interface is two higher-order functions over a *frontier*
(a set of active vertices):

*  :func:`edge_map` — apply ``update(src, dst)`` over every edge leaving
   the frontier; ``update`` returns True to put ``dst`` in the output
   frontier (at most once).  The framework picks between **sparse**
   (gather per frontier vertex) and **dense** (scan all vertices checking
   in-neighbours) traversal by frontier size — Ligra's signature
   direction-switching optimization, with the threshold exposed and the
   per-call decision recorded;
*  :func:`vertex_map` — filter/apply over the frontier itself.

On top of the abstraction, :func:`bfs` and :func:`bellman_ford` in a
dozen lines each — the demonstration that the framework is the right
altitude, checked against the standalone implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.algorithms.graphs import CsrGraph

__all__ = ["Frontier", "EdgeMapStats", "edge_map", "vertex_map", "bfs",
           "bellman_ford"]


@dataclass
class Frontier:
    """An active vertex set (kept sorted & unique)."""

    vertices: np.ndarray

    @staticmethod
    def of(*vs: int) -> "Frontier":
        return Frontier(np.unique(np.array(vs, dtype=np.int64)))

    @property
    def size(self) -> int:
        return int(self.vertices.size)

    @property
    def empty(self) -> bool:
        return self.size == 0


@dataclass
class EdgeMapStats:
    """Per-run accounting: which mode each edge_map call used."""

    sparse_calls: int = 0
    dense_calls: int = 0
    edges_examined: int = 0
    modes: list[str] = field(default_factory=list)


def edge_map(
    g: CsrGraph,
    frontier: Frontier,
    update: Callable[[int, int], bool],
    cond: Callable[[int], bool] = lambda _v: True,
    stats: EdgeMapStats | None = None,
    threshold_fraction: float = 0.05,
    dense_early_exit: bool = True,
) -> Frontier:
    """Ligra's edgeMap.

    Sparse mode when the frontier's outgoing-edge count is below
    ``threshold_fraction * 2m``, else dense mode (iterate destinations,
    scan their in-neighbours).  ``cond(dst)`` gates candidate destinations
    in both modes.  ``dense_early_exit`` stops a destination's in-scan at
    the first successful update — the pull-side short-circuit that makes
    dense BFS fast, valid only for updates that are idempotent after the
    first success (BFS-style "visit once"); accumulating updates like
    Bellman-Ford relaxation must pass False.
    """
    if stats is None:
        stats = EdgeMapStats()
    out_degree = int(np.diff(g.indptr)[frontier.vertices].sum()) if frontier.size else 0
    use_sparse = out_degree < threshold_fraction * max(1, 2 * g.m)

    next_set: set[int] = set()
    if use_sparse:
        stats.sparse_calls += 1
        stats.modes.append("sparse")
        for v in frontier.vertices:
            for u in g.neighbors(int(v)):
                stats.edges_examined += 1
                u = int(u)
                if u not in next_set and cond(u) and update(int(v), u):
                    next_set.add(u)
    else:
        stats.dense_calls += 1
        stats.modes.append("dense")
        in_front = np.zeros(g.n, dtype=bool)
        in_front[frontier.vertices] = True
        for u in range(g.n):
            if not cond(u):
                continue
            for v in g.neighbors(u):  # undirected: in == out neighbours
                stats.edges_examined += 1
                if in_front[v] and update(int(v), u):
                    next_set.add(u)
                    if dense_early_exit:
                        break
    return Frontier(np.array(sorted(next_set), dtype=np.int64))


def vertex_map(
    frontier: Frontier, fn: Callable[[int], bool]
) -> Frontier:
    """Ligra's vertexMap: keep the frontier vertices for which fn is True
    (fn may also perform per-vertex side effects)."""
    keep = [int(v) for v in frontier.vertices if fn(int(v))]
    return Frontier(np.array(keep, dtype=np.int64))


# --------------------------------------------------------------------------- #
# applications
# --------------------------------------------------------------------------- #


def bfs(g: CsrGraph, src: int) -> tuple[np.ndarray, np.ndarray, EdgeMapStats]:
    """BFS in the Ligra style: a dozen lines over edge_map.

    Returns (dist, parent, stats); validated against the standalone BFS in
    the tests.  Parent selection is whichever update lands (CRCW-arbitrary
    flavoured) but always a true predecessor.
    """
    if not (0 <= src < g.n):
        raise ValueError("source out of range")
    dist = np.full(g.n, -1, dtype=np.int64)
    parent = np.full(g.n, -1, dtype=np.int64)
    dist[src] = 0
    parent[src] = src
    stats = EdgeMapStats()
    frontier = Frontier.of(src)
    level = 0
    while not frontier.empty:
        level += 1

        def update(s: int, d: int) -> bool:
            if dist[d] == -1:
                dist[d] = level
                parent[d] = s
                return True
            return False

        frontier = edge_map(
            g, frontier, update, cond=lambda v: dist[v] == -1, stats=stats
        )
    return dist, parent, stats


def bellman_ford(
    g: CsrGraph,
    src: int,
    weight: Callable[[int, int], int] = lambda _u, _v: 1,
    max_rounds: int | None = None,
) -> tuple[np.ndarray, EdgeMapStats]:
    """Single-source shortest paths over edge_map (non-negative weights
    give the classic frontier-based Bellman-Ford).

    ``weight(u, v)`` must be symmetric for an undirected graph.  Stops
    when no distance improves (or after ``max_rounds``).
    """
    INF = np.int64(2**62)
    dist = np.full(g.n, INF, dtype=np.int64)
    dist[src] = 0
    stats = EdgeMapStats()
    frontier = Frontier.of(src)
    rounds = 0
    limit = max_rounds if max_rounds is not None else g.n + 1
    while not frontier.empty and rounds < limit:
        rounds += 1

        def update(s: int, d: int) -> bool:
            nd = dist[s] + weight(s, d)
            if nd < dist[d]:
                dist[d] = nd
                return True
            return False

        frontier = edge_map(
            g, frontier, update, stats=stats, dense_early_exit=False
        )
    return dist, stats
