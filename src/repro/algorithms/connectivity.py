"""Connected components: the second irregular PRAM workload (claim C13).

Vishkin's statement credits XMT's "utility of especially irregular PRAM
algorithms"; connectivity by label propagation is the canonical one after
BFS.  Formulations:

*  :func:`cc_serial` — union-find with path compression (the serial
   baseline and correctness oracle);
*  :func:`cc_label_propagation` — the CRCW min-label algorithm over numpy
   (each round every vertex adopts the minimum label in its closed
   neighbourhood; O(diameter) rounds), with per-round work counts;
*  :func:`cc_xmt` — the same label propagation as XMT spawn blocks, using
   the prefix-sum primitive to count changes (termination detection
   without a barrier reduction).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.graphs import CsrGraph
from repro.machines.xmt import XmtMachine, compute as xcompute, ps as xps, read as xread, write as xwrite

__all__ = ["cc_serial", "cc_label_propagation", "cc_xmt", "labels_equivalent"]


def cc_serial(g: CsrGraph) -> np.ndarray:
    """Union-find connected components; labels are the min vertex id of
    each component (canonical form shared by all implementations)."""
    parent = np.arange(g.n, dtype=np.int64)

    def find(v: int) -> int:
        root = v
        while parent[root] != root:
            root = int(parent[root])
        while parent[v] != root:
            parent[v], v = root, int(parent[v])
        return root

    src = np.repeat(np.arange(g.n), np.diff(g.indptr))
    for u, v in zip(src, g.indices):
        ru, rv = find(int(u)), find(int(v))
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    return np.array([find(v) for v in range(g.n)], dtype=np.int64)


def cc_label_propagation(g: CsrGraph) -> tuple[np.ndarray, list[int]]:
    """Min-label propagation, vectorized (idealized CRCW rounds).

    Returns (labels, per-round changed-vertex counts).  Converges in
    O(diameter) rounds; each round costs O(n + m) work.
    """
    labels = np.arange(g.n, dtype=np.int64)
    src = np.repeat(np.arange(g.n), np.diff(g.indptr))
    dst = g.indices
    rounds: list[int] = []
    while True:
        # every vertex proposes its label to each neighbour; CRCW-min wins
        incoming = np.full(g.n, g.n, dtype=np.int64)
        np.minimum.at(incoming, dst, labels[src])
        new_labels = np.minimum(labels, incoming)
        changed = int((new_labels != labels).sum())
        rounds.append(changed)
        labels = new_labels
        if changed == 0:
            break
    # one round of zero changes marks convergence; drop it from the profile
    rounds.pop()
    return labels, rounds


def cc_xmt(
    g: CsrGraph, machine: XmtMachine | None = None
) -> tuple[np.ndarray, XmtMachine]:
    """Label propagation as XMT spawn blocks.

    Memory: labels[0:n]; change counter at n.  Each round spawns one
    thread per vertex; a thread scans its neighbours, adopts the minimum
    label, and bumps the change counter via the hardware prefix-sum.
    """
    need = g.n + 1
    xm = machine or XmtMachine(need)
    if xm.memory.size < need:
        raise ValueError(f"XMT memory too small: need {need}")
    xm.memory[: g.n] = np.arange(g.n)
    counter = g.n
    while True:
        xm.swrite(counter, 0)

        def thread(tid: int):
            best = yield xread(tid)
            for u in g.neighbors(tid):
                lab = yield xread(int(u))
                if lab < best:
                    best = lab
            mine = yield xread(tid)
            if best < mine:
                yield xwrite(tid, int(best))
                yield xps(counter, 1)
            else:
                yield xcompute(1)

        xm.spawn(g.n, thread)
        if xm.sread(counter) == 0:
            break
    return xm.memory[: g.n].copy(), xm


def labels_equivalent(a: np.ndarray, b: np.ndarray) -> bool:
    """Same partition? (labels may differ; the induced equivalence must not)."""
    if a.shape != b.shape:
        return False
    seen: dict[int, int] = {}
    for x, y in zip(a.tolist(), b.tolist()):
        if x in seen:
            if seen[x] != y:
                return False
        else:
            seen[x] = y
    # and the reverse direction
    seen_rev: dict[int, int] = {}
    for x, y in zip(b.tolist(), a.tolist()):
        if x in seen_rev:
            if seen_rev[x] != y:
                return False
        else:
            seen_rev[x] = y
    return True
