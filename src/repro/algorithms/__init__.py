"""Algorithms named by the panelists, in the formulations the panel contrasts.

Every module provides (where meaningful) four views of the same algorithm:

1.  a plain-Python/numpy **reference** (the mathematical answer);
2.  a **serial RAM** or trace-generating version (Blelloch's Section 2
    story, and fodder for the cache models);
3.  a **PRAM / work-depth** version (Vishkin's and Blelloch's preferred
    abstractions) with measured work and span;
4.  an **F&M** version — a dataflow graph plus one or more mappings
    (Dally's proposal), runnable on the grid machine.

The claim benches compare these views on the same inputs.

Modules: scan, reduce_, fft, edit_distance, bfs, sort, matmul, stencil,
connectivity.
"""

from repro.algorithms import scan, reduce_, fft, edit_distance, bfs, sort, matmul, stencil, connectivity  # noqa: F401

__all__ = [
    "scan",
    "reduce_",
    "fft",
    "edit_distance",
    "bfs",
    "sort",
    "matmul",
    "stencil",
    "connectivity",
]
