"""Scan (prefix sums): Blelloch's signature primitive, in every formulation.

The paper's bio for Blelloch: "His early work on implementations and
algorithmic applications of the scan (prefix sums) operation has become
influential in the design of parallel algorithms for a variety of
platforms."

Provided formulations:

*  :func:`sequential_scan` — the O(n) serial loop (RAM view);
*  :func:`blelloch_scan_pram` — the work-efficient two-phase (upsweep /
   downsweep) scan on the vectorized PRAM: W = O(n), T = O(log n);
*  :func:`hillis_steele_scan_pram` — the classic depth-optimal but
   work-*inefficient* scan: W = O(n log n), T = O(log n) — kept precisely
   because comparing it against Blelloch's scan on a work-limited machine
   is the canonical work-efficiency lesson;
*  :func:`scan_fork_join` — divide-and-conquer scan in the fork-join DSL,
   giving a measured work/span DAG;
*  :func:`segmented_scan` — scan within flagged segments (the building
   block Blelloch's NESL used for nested parallelism).

The F&M formulation lives in :func:`repro.core.idioms.build_scan`.
"""

from __future__ import annotations

import numpy as np

from repro.models.pram import PRAM, ConcurrencyMode
from repro.runtime.fork_join import AnalysisResult, ForkJoin, analyze

__all__ = [
    "sequential_scan",
    "blelloch_scan_pram",
    "hillis_steele_scan_pram",
    "scan_fork_join",
    "segmented_scan",
]


def sequential_scan(values: np.ndarray | list[int]) -> np.ndarray:
    """Inclusive prefix sums, one pass: the serial-RAM formulation."""
    arr = np.asarray(values, dtype=np.int64)
    out = np.empty_like(arr)
    acc = 0
    for i, v in enumerate(arr):
        acc += int(v)
        out[i] = acc
    return out


def _check_pow2(n: int) -> None:
    if n < 1 or n & (n - 1):
        raise ValueError(f"PRAM scans here require power-of-two n, got {n}")


def blelloch_scan_pram(
    values: np.ndarray | list[int],
    n_processors: int | None = None,
    mode: ConcurrencyMode = ConcurrencyMode.EREW,
) -> tuple[np.ndarray, PRAM]:
    """Work-efficient scan: upsweep to a reduction tree, then downsweep.

    Runs on the vectorized PRAM and returns (inclusive_scan, machine) so
    callers can read work/step counters.  EREW throughout — the algorithm
    needs no concurrency, which is the point.
    """
    arr = np.asarray(values, dtype=np.int64)
    n = arr.size
    _check_pow2(n)
    p = n_processors or n
    pram = PRAM(max(p, 1), 2 * n, mode=mode)
    pram.memory[:n] = arr  # working array in shared memory

    # upsweep: for d = 1, 2, 4, ...: x[k + 2d - 1] += x[k + d - 1]
    # (read_all/write_all apply Brent emulation when the level is wider
    # than the machine: ceil(width/p) steps per level)
    d = 1
    while d < n:
        ks = np.arange(0, n, 2 * d, dtype=np.int64)
        left = pram.read_all(ks + d - 1)
        right = pram.read_all(ks + 2 * d - 1)
        pram.write_all(ks + 2 * d - 1, left + right)
        d *= 2

    # total is at n-1; set identity for exclusive downsweep
    total = int(pram.memory[n - 1])
    pram.par_write([0], [n - 1], [0])

    # downsweep
    d = n // 2
    while d >= 1:
        ks = np.arange(0, n, 2 * d, dtype=np.int64)
        left = pram.read_all(ks + d - 1)
        right = pram.read_all(ks + 2 * d - 1)
        pram.write_all(ks + d - 1, right)
        pram.write_all(ks + 2 * d - 1, left + right)
        d //= 2

    exclusive = pram.memory[:n].copy()
    inclusive = exclusive + arr
    assert inclusive[-1] == total
    return inclusive, pram


def hillis_steele_scan_pram(
    values: np.ndarray | list[int],
    mode: ConcurrencyMode = ConcurrencyMode.CREW,
) -> tuple[np.ndarray, PRAM]:
    """Depth-optimal, work-inefficient scan: n log n work, log n steps.

    Double-buffered in shared memory (reads at offset src, writes at offset
    dst).  In every round all n processors stay active: processor i's
    second read fetches its partner ``x[i - d]`` (or re-reads ``x[i]`` when
    it has no partner), so the round's read set contains duplicates — the
    algorithm genuinely requires concurrent reads.  Requesting EREW raises
    through the PRAM's conflict detection, which doubles as a regression
    test for the conflict checker.
    """
    arr = np.asarray(values, dtype=np.int64)
    n = arr.size
    _check_pow2(n)
    pram = PRAM(n, 2 * n, mode=mode)
    pram.memory[:n] = arr
    src, dst = 0, n
    d = 1
    while d < n:
        pids = np.arange(n, dtype=np.int64)
        cur = pram.par_read(pids, src + pids)
        # second read step, all processors: partner value (or own again) —
        # addresses collide (i reads i-d, which i-d also re-reads), so this
        # is the concurrent-read step of the classic algorithm
        partner = np.where(pids >= d, pids - d, pids)
        partner_vals = pram.par_read(pids, src + partner)
        shifted = np.where(pids >= d, partner_vals, 0)
        pram.par_write(pids, dst + pids, cur + shifted)
        src, dst = dst, src
        d *= 2
    return pram.memory[src : src + n].copy(), pram


def scan_fork_join(values: list[int], grain: int = 1) -> AnalysisResult:
    """Divide-and-conquer inclusive scan in the fork-join DSL.

    The standard three-phase recursive scan: recursively scan halves, then
    add the left total into the right half with a parallel-for.  Work
    O(n log n) in this simple form at grain 1 (each level touches n), span
    O(log^2 n) — measured, and contrasted in the benches with the
    work-efficient PRAM version.
    """
    out = list(values)

    def add_offset(fj: ForkJoin, lo: int, hi: int, off: int) -> None:
        def body(fj2: ForkJoin, k: int) -> None:
            fj2.work(1)
            out[lo + k] += off

        fj.parallel_for(hi - lo, body, grain=grain)

    def rec(fj: ForkJoin, lo: int, hi: int) -> None:
        if hi - lo <= grain:
            for i in range(lo + 1, hi):
                out[i] += out[i - 1]
            fj.work(max(1, hi - lo - 1))
            return
        mid = (lo + hi) // 2
        fj.spawn(rec, lo, mid)
        rec(fj, mid, hi)
        fj.sync()
        add_offset(fj, mid, hi, out[mid - 1])

    res = analyze(rec, 0, len(values))
    return AnalysisResult(value=out, dag=res.dag, work=res.work, span=res.span)


def segmented_scan(
    values: np.ndarray | list[int], flags: np.ndarray | list[int]
) -> np.ndarray:
    """Inclusive scan restarting wherever ``flags`` is 1.

    The NESL building block: one segmented scan implements nested data
    parallelism over irregular segment lengths.  Serial reference
    implementation (the PRAM version composes from blelloch_scan on the
    operator-lifted pairs; tests check the algebra against this).
    """
    arr = np.asarray(values, dtype=np.int64)
    flg = np.asarray(flags, dtype=np.int64)
    if arr.shape != flg.shape:
        raise ValueError("values and flags must have the same length")
    out = np.empty_like(arr)
    acc = 0
    for i in range(arr.size):
        if flg[i]:
            acc = 0
        acc += int(arr[i])
        out[i] = acc
    return out
