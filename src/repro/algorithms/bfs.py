"""Breadth-first search: Vishkin's example of serialization without cause.

Paper, Section 5 (bio): "breadth-first search on graphs had been tied to a
first-in first-out queue for no good reason other than enforcing
serialization, even where parallelism exists, in part because such
parallelism would imply limited non-determinism."

Formulations:

*  :func:`bfs_serial` — the FIFO-queue textbook BFS (deterministic
   parents, zero parallelism);
*  :func:`bfs_level_sync` — level-synchronous parallel BFS over numpy
   frontiers; parents are chosen by a CRCW-style rule (``priority`` =
   lowest neighbour wins, ``arbitrary`` = seeded random winner) — the
   "limited non-determinism" made concrete and testable: distances are
   always equal to the serial ones, parent trees may differ but are always
   *valid* BFS trees;
*  :func:`bfs_pram` — the same algorithm performed step-by-step on the
   vectorized PRAM with CRCW-arbitrary writes, yielding work/step counts;
*  :func:`bfs_xmt` — per-vertex threads on the XMT machine using the
   hardware prefix-sum for queue compaction (the irregular-parallelism
   showcase of claim C13);
*  :func:`level_work_profile` — per-level frontier work, the input the
   multicore phase model consumes for its side of the C13 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.graphs import CsrGraph
from repro.machines.xmt import XmtMachine, compute as xcompute, ps as xps, read as xread, write as xwrite
from repro.models.pram import PRAM, ConcurrencyMode

__all__ = [
    "BfsResult",
    "bfs_serial",
    "bfs_level_sync",
    "bfs_pram",
    "bfs_xmt",
    "level_work_profile",
    "validate_bfs_tree",
]

UNREACHED = np.int64(-1)


@dataclass
class BfsResult:
    """Distances, parents, and per-level accounting."""

    dist: np.ndarray
    parent: np.ndarray
    frontier_sizes: list[int]
    edge_inspections: int = 0

    @property
    def levels(self) -> int:
        return len(self.frontier_sizes)


def bfs_serial(g: CsrGraph, src: int) -> BfsResult:
    """Textbook FIFO-queue BFS — the serialization the panel remark targets."""
    if not (0 <= src < g.n):
        raise ValueError(f"source {src} out of range")
    dist = np.full(g.n, UNREACHED)
    parent = np.full(g.n, UNREACHED)
    dist[src] = 0
    parent[src] = src
    queue = [src]
    head = 0
    inspections = 0
    frontier_sizes = []
    level_end = 1
    level_count = 0
    while head < len(queue):
        v = queue[head]
        head += 1
        level_count += 1
        for u in g.neighbors(v):
            inspections += 1
            if dist[u] == UNREACHED:
                dist[u] = dist[v] + 1
                parent[u] = v
                queue.append(int(u))
        if head == level_end:
            frontier_sizes.append(level_count)
            level_count = 0
            level_end = len(queue)
    return BfsResult(dist, parent, frontier_sizes, inspections)


def bfs_level_sync(
    g: CsrGraph, src: int, parent_rule: str = "priority", seed: int = 0
) -> BfsResult:
    """Level-synchronous parallel BFS (numpy-vectorized PRAM idealization).

    Each level expands the whole frontier at once.  When several frontier
    vertices discover the same neighbour, ``parent_rule`` picks the winner:
    ``"priority"`` (lowest parent id — CRCW-priority) or ``"arbitrary"``
    (seeded random — CRCW-arbitrary).  Distances are rule-independent.
    """
    if parent_rule not in ("priority", "arbitrary"):
        raise ValueError("parent_rule must be 'priority' or 'arbitrary'")
    if not (0 <= src < g.n):
        raise ValueError(f"source {src} out of range")
    rng = np.random.default_rng(seed)
    dist = np.full(g.n, UNREACHED)
    parent = np.full(g.n, UNREACHED)
    dist[src] = 0
    parent[src] = src
    frontier = np.array([src], dtype=np.int64)
    frontier_sizes = []
    inspections = 0
    level = 0
    while frontier.size:
        frontier_sizes.append(int(frontier.size))
        # gather all (neighbor, proposed_parent) pairs of the frontier
        starts = g.indptr[frontier]
        ends = g.indptr[frontier + 1]
        counts = ends - starts
        total = int(counts.sum())
        inspections += total
        if total == 0:
            break
        # flatten neighbor lists
        offsets = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
        flat_pos = np.arange(total) + offsets
        nbrs = g.indices[flat_pos]
        props = np.repeat(frontier, counts)
        fresh = dist[nbrs] == UNREACHED
        nbrs, props = nbrs[fresh], props[fresh]
        if nbrs.size == 0:
            frontier = np.zeros(0, dtype=np.int64)
            continue
        if parent_rule == "arbitrary":
            perm = rng.permutation(nbrs.size)
            nbrs, props = nbrs[perm], props[perm]
            order = np.argsort(nbrs, kind="stable")
        else:
            order = np.lexsort((props, nbrs))
        nbrs, props = nbrs[order], props[order]
        first = np.r_[True, nbrs[1:] != nbrs[:-1]]
        winners, win_parents = nbrs[first], props[first]
        level += 1
        dist[winners] = level
        parent[winners] = win_parents
        frontier = winners
    return BfsResult(dist, parent, frontier_sizes, inspections)


def bfs_pram(
    g: CsrGraph, src: int, n_processors: int = 64
) -> tuple[BfsResult, PRAM]:
    """Level-synchronous BFS executed op-by-op on the CRCW-arbitrary PRAM.

    Memory layout: dist array at 0, parent at n; frontier materialized on
    the host (the PRAM charges the reads/writes).  Returns (result, pram)
    with work/step counters — the numbers Vishkin-style work-efficiency
    arguments are about.
    """
    pram = PRAM(n_processors, 2 * g.n, mode=ConcurrencyMode.CRCW_ARBITRARY)
    pram.memory[: g.n] = UNREACHED
    pram.memory[g.n : 2 * g.n] = UNREACHED
    pram.par_write([0], [src], [0])
    pram.par_write([0], [g.n + src], [src])
    frontier = np.array([src], dtype=np.int64)
    frontier_sizes = []
    inspections = 0
    level = 0
    while frontier.size:
        frontier_sizes.append(int(frontier.size))
        # edge expansion in rounds of p processors
        pairs_n: list[np.ndarray] = []
        pairs_p: list[np.ndarray] = []
        for v in frontier:
            nbrs = g.neighbors(int(v))
            if nbrs.size:
                pairs_n.append(nbrs.astype(np.int64))
                pairs_p.append(np.full(nbrs.size, int(v), dtype=np.int64))
        if not pairs_n:
            break
        nbrs = np.concatenate(pairs_n)
        props = np.concatenate(pairs_p)
        inspections += nbrs.size
        level += 1
        next_mask = np.zeros(g.n, dtype=bool)
        for k in range(0, nbrs.size, pram.p):
            chunk_n = nbrs[k : k + pram.p]
            chunk_p = props[k : k + pram.p]
            pids = np.arange(chunk_n.size)
            seen = pram.par_read(pids, chunk_n)
            fresh = seen == UNREACHED
            if not fresh.any():
                continue
            # CRCW-arbitrary write of dist and parent for fresh neighbors
            pram.par_write(pids[fresh], chunk_n[fresh], np.full(fresh.sum(), level))
            pram.par_write(pids[fresh], g.n + chunk_n[fresh], chunk_p[fresh])
            next_mask[chunk_n[fresh]] = True
        frontier = np.flatnonzero(next_mask).astype(np.int64)
    dist = pram.memory[: g.n].copy()
    parent = pram.memory[g.n : 2 * g.n].copy()
    return BfsResult(dist, parent, frontier_sizes, inspections), pram


def bfs_xmt(g: CsrGraph, src: int, machine: XmtMachine | None = None) -> tuple[BfsResult, XmtMachine]:
    """BFS on the XMT machine: one virtual thread per frontier vertex,
    hardware prefix-sum builds the next frontier without a barrier scan.

    Memory layout: dist[0:n], parent[n:2n], frontiers alternate in
    [2n, 3n) / [3n, 4n), queue-size cell at 4n.
    """
    need = 4 * g.n + 1
    xm = machine or XmtMachine(need)
    if xm.memory.size < need:
        raise ValueError(f"XMT memory too small: need {need}")
    xm.memory[: g.n] = UNREACHED
    xm.memory[g.n : 2 * g.n] = UNREACHED
    xm.swrite(src, 0)
    xm.swrite(g.n + src, src)
    cur_base, nxt_base, size_cell = 2 * g.n, 3 * g.n, 4 * g.n
    xm.swrite(cur_base, src)
    cur_size = 1
    frontier_sizes = []
    inspections = 0
    level = 0
    while cur_size:
        frontier_sizes.append(cur_size)
        level += 1
        xm.swrite(size_cell, 0)
        lvl = level

        def thread(tid: int):
            nonlocal inspections
            v = yield xread(cur_base + tid)
            for u in g.neighbors(int(v)):
                inspections += 1
                seen = yield xread(int(u))
                if seen == UNREACHED:
                    yield xwrite(int(u), lvl)
                    yield xwrite(g.n + int(u), int(v))
                    slot = yield xps(size_cell, 1)
                    yield xwrite(nxt_base + slot, int(u))
                else:
                    yield xcompute(1)

        xm.spawn(cur_size, thread)
        raw = int(xm.sread(size_cell))
        # races may enqueue a vertex twice; dedup (standard for CRCW BFS)
        if raw:
            items = np.unique(xm.memory[nxt_base : nxt_base + raw])
            # re-check: keep only vertices actually at this level
            items = items[xm.memory[items] == lvl]
            xm.memory[cur_base : cur_base + items.size] = items
            cur_size = int(items.size)
        else:
            cur_size = 0
    dist = xm.memory[: g.n].copy()
    parent = xm.memory[g.n : 2 * g.n].copy()
    return BfsResult(dist, parent, frontier_sizes, inspections), xm


def level_work_profile(g: CsrGraph, src: int) -> list[list[int]]:
    """Per-level per-frontier-vertex edge work — the multicore phase input.

    ``profile[level]`` lists, for each vertex of that level's frontier, its
    degree (the work items the conventional machine statically chunks).
    """
    res = bfs_serial(g, src)
    levels: list[list[int]] = [[] for _ in range(res.levels)]
    for v in range(g.n):
        d = int(res.dist[v])
        if d >= 0:
            levels[d].append(g.degree(v))
    return levels


def validate_bfs_tree(g: CsrGraph, src: int, result: BfsResult) -> None:
    """Check a BFS result is a valid BFS of g (any parent rule).

    Distances must equal serial BFS distances; every reached vertex's
    parent must be a true neighbour exactly one level closer.
    Raises AssertionError on the first violation.
    """
    ref = bfs_serial(g, src)
    assert np.array_equal(result.dist, ref.dist), "distances differ from BFS"
    for v in range(g.n):
        if v == src or result.dist[v] == UNREACHED:
            continue
        p = int(result.parent[v])
        assert p >= 0, f"reached vertex {v} has no parent"
        assert v in g.neighbors(p), f"parent {p} of {v} is not a neighbour"
        assert result.dist[v] == result.dist[p] + 1, (
            f"parent {p} of {v} not one level closer"
        )
