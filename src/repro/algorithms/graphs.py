"""Graph generators and the CSR representation shared by BFS/connectivity.

Vishkin's statement centres on *irregular* algorithms ("the utility of
especially irregular PRAM algorithms"); BFS and connected components are
the package's irregular workloads.  Graphs are undirected and stored in
CSR form — ``indptr`` of length n+1 and ``indices`` of length 2m — the
layout every formulation (serial, PRAM, XMT) shares so that work counts
are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CsrGraph", "from_edges", "random_gnp", "grid_graph", "path_graph",
           "star_graph", "complete_graph"]


@dataclass(frozen=True)
class CsrGraph:
    """Undirected graph in compressed sparse row form."""

    n: int
    indptr: np.ndarray  # int64, len n+1
    indices: np.ndarray  # int64, len 2m (each undirected edge twice)

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return self.indices.size // 2

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def validate(self) -> None:
        """Structural sanity: monotone indptr, in-range indices, symmetry."""
        if self.indptr.size != self.n + 1 or self.indptr[0] != 0:
            raise ValueError("malformed indptr")
        if (np.diff(self.indptr) < 0).any():
            raise ValueError("indptr not monotone")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.n
        ):
            raise ValueError("neighbor index out of range")
        # symmetry: multiset of (u, v) equals multiset of (v, u)
        src = np.repeat(np.arange(self.n), np.diff(self.indptr))
        fwd = np.stack([src, self.indices])
        bwd = np.stack([self.indices, src])
        if not np.array_equal(
            fwd[:, np.lexsort(fwd)], bwd[:, np.lexsort(bwd)]
        ):
            raise ValueError("graph not symmetric")


def from_edges(n: int, edges: np.ndarray | list[tuple[int, int]]) -> CsrGraph:
    """Build an undirected CSR graph from an edge list (self-loops and
    duplicate edges are removed)."""
    e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if e.size:
        if e.min() < 0 or e.max() >= n:
            raise ValueError("edge endpoint out of range")
        e = e[e[:, 0] != e[:, 1]]
        lo = np.minimum(e[:, 0], e[:, 1])
        hi = np.maximum(e[:, 0], e[:, 1])
        e = np.unique(np.stack([lo, hi], axis=1), axis=0)
    both = np.concatenate([e, e[:, ::-1]], axis=0) if e.size else e.reshape(0, 2)
    order = np.lexsort((both[:, 1], both[:, 0])) if both.size else np.array([], int)
    both = both[order] if both.size else both
    counts = np.bincount(both[:, 0], minlength=n) if both.size else np.zeros(n, int)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = both[:, 1].astype(np.int64) if both.size else np.zeros(0, np.int64)
    return CsrGraph(n=n, indptr=indptr, indices=indices)


def random_gnp(n: int, p: float, seed: int = 0) -> CsrGraph:
    """Erdos-Renyi G(n, p)."""
    if not (0.0 <= p <= 1.0):
        raise ValueError("p must be in [0, 1]")
    rng = np.random.default_rng(seed)
    iu = np.triu_indices(n, k=1)
    mask = rng.random(iu[0].size) < p
    edges = np.stack([iu[0][mask], iu[1][mask]], axis=1)
    return from_edges(n, edges)


def grid_graph(w: int, h: int) -> CsrGraph:
    """W x H 4-neighbour grid (large diameter — BFS's worst case)."""
    edges = []
    for y in range(h):
        for x in range(w):
            v = y * w + x
            if x + 1 < w:
                edges.append((v, v + 1))
            if y + 1 < h:
                edges.append((v, v + w))
    return from_edges(w * h, edges)


def path_graph(n: int) -> CsrGraph:
    """A path: diameter n-1, zero parallelism for level-synchronous BFS."""
    return from_edges(n, [(i, i + 1) for i in range(n - 1)])


def star_graph(n: int) -> CsrGraph:
    """A star: diameter 2, maximal parallelism."""
    return from_edges(n, [(0, i) for i in range(1, n)])


def complete_graph(n: int) -> CsrGraph:
    return from_edges(n, [(i, j) for i in range(n) for j in range(i + 1, n)])
