"""Reduction: the paper's own "summing the elements of a sequence" example.

Section 2 uses summation as the canonical RAM-to-machine story; Section 3's
idiom list includes ``reduce``.  Formulations:

*  :func:`sequential_reduce` — the for-loop (and a RAM assembly twin lives
   in :func:`repro.models.ram.sum_program`);
*  :func:`tree_reduce_pram` — O(n) work, O(log n) steps on the PRAM;
*  :func:`reduce_fork_join` — recursive halving in the fork-join DSL;
*  F&M: :func:`repro.core.idioms.build_reduce`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.models.pram import PRAM, ConcurrencyMode
from repro.runtime.fork_join import AnalysisResult, ForkJoin, analyze

__all__ = ["sequential_reduce", "tree_reduce_pram", "reduce_fork_join"]


def sequential_reduce(values: np.ndarray | list[int]) -> int:
    """The serial loop: n-1 additions, depth n-1."""
    acc = 0
    for v in np.asarray(values, dtype=np.int64):
        acc += int(v)
    return acc


def tree_reduce_pram(
    values: np.ndarray | list[int],
    n_processors: int | None = None,
    mode: ConcurrencyMode = ConcurrencyMode.EREW,
) -> tuple[int, PRAM]:
    """Balanced binary-tree reduction on the vectorized PRAM.

    Power-of-two n; EREW suffices.  Returns (sum, machine).
    """
    arr = np.asarray(values, dtype=np.int64)
    n = arr.size
    if n < 1 or n & (n - 1):
        raise ValueError(f"requires power-of-two n, got {n}")
    pram = PRAM(n_processors or max(n // 2, 1), n, mode=mode)
    pram.memory[:n] = arr
    stride = 1
    while stride < n:
        ks = np.arange(0, n, 2 * stride, dtype=np.int64)
        a = pram.read_all(ks)
        b = pram.read_all(ks + stride)
        pram.write_all(ks, a + b)
        stride *= 2
    return int(pram.memory[0]), pram


def reduce_fork_join(
    values: list[int], grain: int = 1, combine: Callable[[int, int], int] | None = None
) -> AnalysisResult:
    """Recursive-halving reduction in the fork-join DSL.

    W = Theta(n), D = Theta(log n) at grain 1; larger grains trade span for
    lower spawn overhead (the classic granularity ablation, swept in the
    C10 bench).
    """
    op = combine or (lambda a, b: a + b)

    def rec(fj: ForkJoin, lo: int, hi: int) -> int:
        if hi - lo <= grain:
            acc = values[lo]
            for i in range(lo + 1, hi):
                acc = op(acc, values[i])
            fj.work(max(1, hi - lo - 1))
            return acc
        mid = (lo + hi) // 2
        left = fj.spawn(rec, lo, mid)
        right = rec(fj, mid, hi)
        fj.sync()
        fj.work(1)
        return op(left.value, right)

    if not values:
        raise ValueError("cannot reduce an empty sequence")
    return analyze(rec, 0, len(values))
