"""FFT: same O(N log N), very different constants — the paper's example.

Paper, Section 3: "For a given problem - there may be several functions
that compute the result (e.g., decimation in time vs decimation in space
FFT, or different radix FFT).  For each function there are many possible
mappings..." and "When comparing two FFT algorithms that are both
O(NlogN), the one that is 50,000x more efficient is preferred."

Provided:

*  numpy-checked reference implementations with exact op counts:
   :func:`fft_recursive_dit`, :func:`fft_recursive_dif`,
   :func:`fft_radix4`, :func:`fft_iterative` — the "several functions";
*  F&M dataflow graphs :func:`fft_graph` for the radix-2 DIT and DIF
   networks, with per-node position indices so the standard placement
   sweeps apply — the "many possible mappings".  DIT does its short-
   distance butterflies first and its long-distance ones last; DIF is the
   mirror image.  Which one wins on a grid therefore depends on where the
   data starts and ends — exactly the kind of constant-factor effect the
   RAM/PRAM models cannot see (claim C7's bench measures it).

Graphs carry complex values (the op table is generic over Python numbers).
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass

import numpy as np

from repro.core.function import DataflowGraph

__all__ = [
    "OpCount",
    "fft_recursive_dit",
    "fft_recursive_dif",
    "fft_radix4",
    "fft_iterative",
    "fft_graph",
    "bit_reverse",
]


def _check_pow2(n: int) -> None:
    if n < 1 or n & (n - 1):
        raise ValueError(f"FFT size must be a power of two, got {n}")


def bit_reverse(i: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``i``."""
    out = 0
    for _ in range(bits):
        out = (out << 1) | (i & 1)
        i >>= 1
    return out


@dataclass
class OpCount:
    """Complex-arithmetic operation counts."""

    mul: int = 0
    add: int = 0

    @property
    def total(self) -> int:
        return self.mul + self.add

    def weighted(self, mul_cost: float = 4.0, add_cost: float = 1.0) -> float:
        """Energy-weighted ops (a complex mul is ~4 real mults + 2 adds;
        we reuse the word-level factors of the F&M op table)."""
        return self.mul * mul_cost + self.add * add_cost


# --------------------------------------------------------------------------- #
# reference implementations (the "several functions")
# --------------------------------------------------------------------------- #


def fft_recursive_dit(x: np.ndarray, count: OpCount | None = None) -> np.ndarray:
    """Radix-2 decimation-in-time: split by even/odd index, twiddle last."""
    x = np.asarray(x, dtype=np.complex128)
    n = x.size
    _check_pow2(n)
    if n == 1:
        return x.copy()
    count = count if count is not None else OpCount()
    even = fft_recursive_dit(x[0::2], count)
    odd = fft_recursive_dit(x[1::2], count)
    k = np.arange(n // 2)
    tw = np.exp(-2j * np.pi * k / n)
    t = tw * odd
    count.mul += n // 2
    count.add += n  # one add and one sub per pair
    return np.concatenate([even + t, even - t])


def fft_recursive_dif(x: np.ndarray, count: OpCount | None = None) -> np.ndarray:
    """Radix-2 decimation-in-frequency ("decimation in space"): split by
    half, twiddle first, outputs interleave."""
    x = np.asarray(x, dtype=np.complex128)
    n = x.size
    _check_pow2(n)
    if n == 1:
        return x.copy()
    count = count if count is not None else OpCount()
    half = n // 2
    a, b = x[:half], x[half:]
    k = np.arange(half)
    tw = np.exp(-2j * np.pi * k / n)
    s = a + b
    d = (a - b) * tw
    count.add += n
    count.mul += half
    out = np.empty(n, dtype=np.complex128)
    out[0::2] = fft_recursive_dif(s, count)
    out[1::2] = fft_recursive_dif(d, count)
    return out


def fft_radix4(x: np.ndarray, count: OpCount | None = None) -> np.ndarray:
    """Radix-4 DIT (requires n a power of 4): fewer multiplies per output.

    The "different radix" alternative: ~25% fewer complex multiplies than
    radix-2 — the classic constant-factor tradeoff invisible to O(N log N).
    """
    x = np.asarray(x, dtype=np.complex128)
    n = x.size
    if n == 1:
        return x.copy()
    if n % 4:
        raise ValueError(f"radix-4 FFT needs n a power of 4, got {n}")
    count = count if count is not None else OpCount()
    parts = [fft_radix4(x[r::4], count) for r in range(4)]
    m = n // 4
    k = np.arange(m)
    w1 = np.exp(-2j * np.pi * k / n)
    w2 = w1 * w1
    w3 = w2 * w1
    t0 = parts[0]
    t1 = w1 * parts[1]
    t2 = w2 * parts[2]
    t3 = w3 * parts[3]
    count.mul += 3 * m
    # radix-4 butterfly: 8 complex adds per group of 4 outputs
    a0 = t0 + t2
    a1 = t0 - t2
    a2 = t1 + t3
    a3 = -1j * (t1 - t3)  # multiply by -j is a swap/negate, not a true mul
    count.add += 8 * m
    return np.concatenate([a0 + a2, a1 + a3, a0 - a2, a1 - a3])


def fft_iterative(x: np.ndarray, count: OpCount | None = None) -> np.ndarray:
    """Iterative in-place radix-2 DIT (bit-reversed input order) — the
    direct executable twin of the DIT dataflow graph."""
    x = np.asarray(x, dtype=np.complex128)
    n = x.size
    _check_pow2(n)
    count = count if count is not None else OpCount()
    bits = n.bit_length() - 1
    out = np.array([x[bit_reverse(i, bits)] for i in range(n)], dtype=np.complex128)
    size = 2
    while size <= n:
        half = size // 2
        tw = np.exp(-2j * np.pi * np.arange(half) / size)
        for start in range(0, n, size):
            a = out[start : start + half].copy()
            b = out[start + half : start + size] * tw
            count.mul += half
            count.add += size
            out[start : start + half] = a + b
            out[start + half : start + size] = a - b
        size *= 2
    return out


# --------------------------------------------------------------------------- #
# F&M dataflow graphs (the "many possible mappings")
# --------------------------------------------------------------------------- #


def fft_graph(n: int, variant: str = "dit") -> DataflowGraph:
    """The radix-2 butterfly network as a dataflow graph.

    Inputs are ``("x", (i,))`` in natural order; outputs ``("X", k)`` in
    natural order.  Compute nodes carry ``index=(position, stage)`` so the
    placement sweeps distribute by array position.

    ``variant="dit"``: bit-reversed load, butterflies with distance 1, 2,
    4, ..., n/2 — communication grows with stage.
    ``variant="dif"``: natural load, distances n/2, ..., 2, 1 —
    communication shrinks with stage; outputs unscrambled via labels.
    """
    _check_pow2(n)
    if variant not in ("dit", "dif"):
        raise ValueError(f"variant must be 'dit' or 'dif', got {variant!r}")
    bits = n.bit_length() - 1
    g = DataflowGraph()
    inputs = [g.input("x", (i,)) for i in range(n)]

    if variant == "dit":
        cur = [inputs[bit_reverse(j, bits)] for j in range(n)]
        sizes = [2 << s for s in range(bits)]
    else:
        cur = list(inputs)
        sizes = [n >> s for s in range(bits)]

    stage = 0
    for size in sizes:
        half = size // 2
        nxt = list(cur)
        for start in range(0, n, size):
            for k in range(half):
                j = start + k
                ja, jb = j, j + half
                if variant == "dit":
                    w = cmath.exp(-2j * cmath.pi * k / size)
                    tw = g.const(w, index=(jb, stage))
                    t = g.op("*", tw, cur[jb], index=(jb, stage), group="tw")
                    nxt[ja] = g.op("+", cur[ja], t, index=(ja, stage), group="bf")
                    nxt[jb] = g.op("-", cur[ja], t, index=(jb, stage), group="bf")
                else:  # dif: sum first, twiddle the difference
                    w = cmath.exp(-2j * cmath.pi * k / size)
                    s_node = g.op("+", cur[ja], cur[jb], index=(ja, stage), group="bf")
                    d_node = g.op("-", cur[ja], cur[jb], index=(jb, stage), group="bf")
                    tw = g.const(w, index=(jb, stage))
                    nxt[ja] = s_node
                    nxt[jb] = g.op("*", d_node, tw, index=(jb, stage), group="tw")
        cur = nxt
        stage += 1

    if variant == "dit":
        for k in range(n):
            g.mark_output(cur[k], ("X", k))
    else:
        # DIF leaves results in bit-reversed positions
        for j in range(n):
            g.mark_output(cur[j], ("X", bit_reverse(j, bits)))
    return g
