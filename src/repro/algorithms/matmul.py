"""Matrix multiplication: the communication-avoiding showcase.

Paper, Section 3: "Much work has addressed communication costs: Demmel's
communication avoiding algorithms, cache-oblivious algorithms, ..."; and
Section 6 (Yelick): "Algorithms must also treat communication avoidance as
a first-class optimization target, reducing both data movement volume and
number of distinct events."

Three families:

**Cache-side (claim C11).**  Address-trace generators for naive (ijk),
blocked, and recursive cache-oblivious matmul — fed to the cache
simulators.  The same loop nests also run numerically
(:func:`matmul_naive`, :func:`matmul_blocked`, :func:`matmul_recursive`)
and are checked against numpy, so the traces demonstrably belong to a
correct algorithm.

**Distributed-side (claim C12).**  Executable simulations of SUMMA-style
broadcast matmul, Cannon's algorithm, and 2.5D (replicated Cannon) over a
virtual processor grid, counting every word a processor sends or receives.
Communication volumes follow the known laws: SUMMA ~ n^2 * sqrt(p), Cannon
~ n^2 * sqrt(p), 2.5D ~ n^2 * sqrt(p/c) + replication cost — measured, and
checked against :func:`comm_volume_bound`.

Matrices are word-addressed row-major at fixed bases for the traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = [
    "matmul_naive",
    "matmul_blocked",
    "matmul_recursive",
    "trace_naive",
    "trace_blocked",
    "trace_recursive",
    "DistStats",
    "summa",
    "cannon",
    "matmul_25d",
    "comm_volume_bound",
]

Trace = Iterator[tuple[str, int]]

#: Default word bases of A, B, C for the trace generators (1 MiW apart so
#: operand arrays never alias in any realistic cache configuration).
BASE_A, BASE_B, BASE_C = 0, 1 << 20, 2 << 20


# --------------------------------------------------------------------------- #
# numeric kernels (verified against numpy in the tests)
# --------------------------------------------------------------------------- #


def matmul_naive(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Triple loop, ijk order."""
    n, k = a.shape
    k2, m = b.shape
    if k != k2:
        raise ValueError("inner dimensions differ")
    c = np.zeros((n, m), dtype=np.result_type(a, b))
    for i in range(n):
        for j in range(m):
            acc = c[i, j]
            for kk in range(k):
                acc += a[i, kk] * b[kk, j]
            c[i, j] = acc
    return c


def matmul_blocked(a: np.ndarray, b: np.ndarray, bs: int) -> np.ndarray:
    """Cache-aware tiling with block size ``bs`` (numpy inner blocks)."""
    if bs < 1:
        raise ValueError("block size must be >= 1")
    n, k = a.shape
    _, m = b.shape
    c = np.zeros((n, m), dtype=np.result_type(a, b))
    for i0 in range(0, n, bs):
        for j0 in range(0, m, bs):
            for k0 in range(0, k, bs):
                c[i0 : i0 + bs, j0 : j0 + bs] += (
                    a[i0 : i0 + bs, k0 : k0 + bs] @ b[k0 : k0 + bs, j0 : j0 + bs]
                )
    return c


def matmul_recursive(a: np.ndarray, b: np.ndarray, cutoff: int = 16) -> np.ndarray:
    """Cache-oblivious recursive quadrant multiply (square power-of-two n)."""
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n, n):
        raise ValueError("square matrices required")
    if n & (n - 1):
        raise ValueError("power-of-two size required")
    c = np.zeros((n, n), dtype=np.result_type(a, b))

    def rec(ai, aj, bi, bj, ci, cj, size):
        if size <= cutoff:
            c[ci : ci + size, cj : cj + size] += (
                a[ai : ai + size, aj : aj + size] @ b[bi : bi + size, bj : bj + size]
            )
            return
        h = size // 2
        for di in (0, h):
            for dj in (0, h):
                for dk in (0, h):
                    rec(ai + di, aj + dk, bi + dk, bj + dj, ci + di, cj + dj, h)

    rec(0, 0, 0, 0, 0, 0, n)
    return c


# --------------------------------------------------------------------------- #
# trace generators (row-major word addressing)
# --------------------------------------------------------------------------- #


def _a(n: int, i: int, k: int) -> int:
    return BASE_A + i * n + k


def _b(n: int, k: int, j: int) -> int:
    return BASE_B + k * n + j


def _c(n: int, i: int, j: int) -> int:
    return BASE_C + i * n + j


def trace_naive(n: int) -> Trace:
    """Addresses of the ijk triple loop (C kept in a register per (i, j))."""
    for i in range(n):
        for j in range(n):
            for k in range(n):
                yield ("r", _a(n, i, k))
                yield ("r", _b(n, k, j))
            yield ("w", _c(n, i, j))


def trace_blocked(n: int, bs: int) -> Trace:
    """Addresses of the tiled loop nest (accumulator tile re-read per k0)."""
    if bs < 1:
        raise ValueError("block size must be >= 1")
    for i0 in range(0, n, bs):
        for j0 in range(0, n, bs):
            for k0 in range(0, n, bs):
                for i in range(i0, min(i0 + bs, n)):
                    for j in range(j0, min(j0 + bs, n)):
                        if k0:
                            yield ("r", _c(n, i, j))
                        for k in range(k0, min(k0 + bs, n)):
                            yield ("r", _a(n, i, k))
                            yield ("r", _b(n, k, j))
                        yield ("w", _c(n, i, j))


def trace_recursive(n: int, cutoff: int = 8) -> Trace:
    """Addresses of the cache-oblivious recursion (base case = tiny ijk)."""
    if n & (n - 1):
        raise ValueError("power-of-two size required")

    def rec(ai, aj, bi, bj, ci, cj, size, accumulate):
        if size <= cutoff:
            for i in range(size):
                for j in range(size):
                    if accumulate:
                        yield ("r", _c(n, ci + i, cj + j))
                    for k in range(size):
                        yield ("r", _a(n, ai + i, aj + k))
                        yield ("r", _b(n, bi + k, bj + j))
                    yield ("w", _c(n, ci + i, cj + j))
            return
        h = size // 2
        for di in (0, h):
            for dj in (0, h):
                first = True
                for dk in (0, h):
                    yield from rec(
                        ai + di, aj + dk, bi + dk, bj + dj,
                        ci + di, cj + dj, h, accumulate or not first,
                    )
                    first = False

    yield from rec(0, 0, 0, 0, 0, 0, n, False)


# --------------------------------------------------------------------------- #
# distributed algorithms with measured communication
# --------------------------------------------------------------------------- #


@dataclass
class DistStats:
    """Word counts for one distributed matmul run."""

    algorithm: str
    p: int
    words_total: int
    messages: int
    words_per_proc_max: int

    @property
    def words_per_proc_avg(self) -> float:
        return self.words_total / self.p if self.p else 0.0


def _check_grid(n: int, p: int) -> int:
    s = math.isqrt(p)
    if s * s != p:
        raise ValueError(f"p={p} must be a perfect square")
    if n % s:
        raise ValueError(f"n={n} must be divisible by sqrt(p)={s}")
    return s


def summa(a: np.ndarray, b: np.ndarray, p: int) -> tuple[np.ndarray, DistStats]:
    """SUMMA: in step k, row k of the A-blocks and column k of the B-blocks
    are broadcast along their grid row/column.  The conventional baseline:
    every processor receives 2 * (n^2/p) * sqrt(p) words."""
    n = a.shape[0]
    s = _check_grid(n, p)
    bs = n // s
    c = np.zeros_like(a, dtype=np.result_type(a, b))
    words = 0
    msgs = 0
    per_proc = np.zeros((s, s), dtype=np.int64)
    for k in range(s):
        for i in range(s):
            for j in range(s):
                # (i, j) receives A(i, k) unless it owns it, and B(k, j) likewise
                if j != k:
                    words += bs * bs
                    msgs += 1
                    per_proc[i, j] += bs * bs
                if i != k:
                    words += bs * bs
                    msgs += 1
                    per_proc[i, j] += bs * bs
                c[i * bs : (i + 1) * bs, j * bs : (j + 1) * bs] += (
                    a[i * bs : (i + 1) * bs, k * bs : (k + 1) * bs]
                    @ b[k * bs : (k + 1) * bs, j * bs : (j + 1) * bs]
                )
    return c, DistStats("summa", p, words, msgs, int(per_proc.max()))


def cannon(a: np.ndarray, b: np.ndarray, p: int) -> tuple[np.ndarray, DistStats]:
    """Cannon's algorithm: skewed initial alignment, then sqrt(p) shift
    rounds.  Nearest-neighbour only — same asymptotic volume as SUMMA but
    point-to-point messages instead of broadcasts."""
    n = a.shape[0]
    s = _check_grid(n, p)
    bs = n // s

    def blk(m: np.ndarray, i: int, j: int) -> np.ndarray:
        return m[i * bs : (i + 1) * bs, j * bs : (j + 1) * bs]

    # local block copies, pre-skewed: A(i, j) <- A(i, (i + j) mod s), etc.
    A = [[blk(a, i, (i + j) % s).copy() for j in range(s)] for i in range(s)]
    B = [[blk(b, (i + j) % s, j).copy() for j in range(s)] for i in range(s)]
    C = [[np.zeros((bs, bs), dtype=np.result_type(a, b)) for _ in range(s)] for _ in range(s)]
    words = 0
    msgs = 0
    per_proc = np.zeros((s, s), dtype=np.int64)
    # initial skew counts as communication (each block moves once)
    for i in range(s):
        for j in range(s):
            if (i + j) % s != j:
                words += 2 * bs * bs
                msgs += 2
                per_proc[i, j] += 2 * bs * bs
    for _step in range(s):
        for i in range(s):
            for j in range(s):
                C[i][j] += A[i][j] @ B[i][j]
        if s == 1:
            break
        # shift A left by one, B up by one (every proc sends+receives)
        A = [[A[i][(j + 1) % s] for j in range(s)] for i in range(s)]
        B = [[B[(i + 1) % s][j] for j in range(s)] for i in range(s)]
        words += 2 * bs * bs * s * s
        msgs += 2 * s * s
        per_proc += 2 * bs * bs
    c = np.zeros_like(a, dtype=np.result_type(a, b))
    for i in range(s):
        for j in range(s):
            c[i * bs : (i + 1) * bs, j * bs : (j + 1) * bs] = C[i][j]
    return c, DistStats("cannon", p, words, msgs, int(per_proc.max()))


def matmul_25d(
    a: np.ndarray, b: np.ndarray, p: int, c_factor: int
) -> tuple[np.ndarray, DistStats]:
    """2.5D matmul: c-fold replication cuts shift traffic by sqrt(c).

    Processors form a sqrt(p/c) x sqrt(p/c) x c torus; each layer holds a
    full A, B replica (replication cost counted) and performs 1/c of the
    Cannon shift rounds; layers sum-reduce C at the end (also counted).
    """
    n = a.shape[0]
    if c_factor < 1 or p % c_factor:
        raise ValueError("c must divide p")
    base = p // c_factor
    s = math.isqrt(base)
    if s * s != base:
        raise ValueError(f"p/c = {base} must be a perfect square")
    if n % s:
        raise ValueError(f"n must be divisible by sqrt(p/c) = {s}")
    bs = n // s

    def blk(m: np.ndarray, i: int, j: int) -> np.ndarray:
        return m[i * bs : (i + 1) * bs, j * bs : (j + 1) * bs]

    words = 0
    msgs = 0
    # replication broadcast: (c - 1) extra copies of A and B
    words += 2 * n * n * (c_factor - 1)
    msgs += 2 * base * (c_factor - 1)

    rounds_per_layer = -(-s // c_factor)
    c_accum = np.zeros_like(a, dtype=np.result_type(a, b))
    for layer in range(c_factor):
        A = [[blk(a, i, (i + j + layer * rounds_per_layer) % s).copy() for j in range(s)] for i in range(s)]
        B = [[blk(b, (i + j + layer * rounds_per_layer) % s, j).copy() for j in range(s)] for i in range(s)]
        start = layer * rounds_per_layer
        stop = min(s, start + rounds_per_layer)
        for _step in range(start, stop):
            for i in range(s):
                for j in range(s):
                    c_accum[i * bs : (i + 1) * bs, j * bs : (j + 1) * bs] += (
                        A[i][j] @ B[i][j]
                    )
            if _step + 1 < stop:
                A = [[A[i][(j + 1) % s] for j in range(s)] for i in range(s)]
                B = [[B[(i + 1) % s][j] for j in range(s)] for i in range(s)]
                words += 2 * bs * bs * s * s
                msgs += 2 * s * s
    # final reduction of C across layers
    words += n * n * (c_factor - 1)
    msgs += base * (c_factor - 1)
    per_proc_max = words // max(1, p)
    return c_accum, DistStats("2.5d", p, words, msgs, int(per_proc_max))


def comm_volume_bound(n: int, p: int, c_factor: int = 1) -> float:
    """The communication lower-bound shape: Theta(n^2 * sqrt(p / c)).

    Used by the C12 bench to check measured volumes scale correctly (the
    constant is algorithm-dependent; the *shape* is the law)."""
    return n * n * math.sqrt(p / c_factor)
