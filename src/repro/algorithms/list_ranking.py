"""List ranking by pointer jumping — the canonical Vishkin-era PRAM kernel.

Section 5 (bio): "I recall well how in 1979 these compiler and complexity
backdrops did not prevent me from betting my career on an independent
direction: work efficient PRAM algorithms."  List ranking is the problem
that school of work is most identified with: given a linked list, compute
every node's distance to the tail.  It is the ur-example of parallelism
hiding inside an apparently sequential structure — the serial algorithm is
a pointer chase; the PRAM algorithm (Wyllie's pointer jumping) finishes in
O(log n) lock-step rounds.

Provided:

*  :func:`rank_serial` — the O(n) pointer chase (work-optimal, depth n);
*  :func:`pointer_jumping_pram` — Wyllie's algorithm on the vectorized
   PRAM: every round each node adds its successor's rank and jumps its
   pointer (``rank[i] += rank[next[i]]; next[i] = next[next[i]]``).
   O(log n) rounds but O(n log n) work — the textbook *non*-work-efficient
   algorithm, kept that way deliberately: contrasting its measured work
   against the serial count is the work-efficiency lesson Vishkin's
   statement is about;
*  :func:`ruling_set_pram` — the work-efficient fix: sample ~n/log n
   *rulers*, walk the short segments between rulers in parallel (O(n)
   total work, segments are O(log n) long w.h.p.), Wyllie the contracted
   ruler list (O(n/log n * log n) = O(n) work), then expand.  Total work
   O(n) — matching the serial algorithm up to constants — while keeping
   polylog steps.  The measured work-per-element stays flat as n grows,
   whereas Wyllie's grows like log n; the tests assert exactly that gap.
*  :func:`random_list` — a random permutation list for tests/benches.

Concurrent reads happen at the tail (every finished node keeps reading
it), so the algorithm needs CREW — also checkable, and checked in the
tests.
"""

from __future__ import annotations

import numpy as np

from repro.models.pram import PRAM, ConcurrencyMode

__all__ = ["rank_serial", "pointer_jumping_pram", "ruling_set_pram",
           "random_list"]


def random_list(n: int, seed: int = 0) -> tuple[np.ndarray, int]:
    """A random singly-linked list over nodes 0..n-1.

    Returns ``(next, head)`` where ``next[tail] == tail`` (self-loop
    sentinel), and the list visits every node exactly once.
    """
    if n < 1:
        raise ValueError("need at least one node")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    nxt = np.empty(n, dtype=np.int64)
    for k in range(n - 1):
        nxt[order[k]] = order[k + 1]
    nxt[order[-1]] = order[-1]
    return nxt, int(order[0])


def rank_serial(nxt: np.ndarray) -> np.ndarray:
    """Distance to tail by walking from the tail backwards.

    O(n) work: one forward pass to invert the list, one to assign ranks.
    """
    nxt = np.asarray(nxt, dtype=np.int64)
    n = nxt.size
    tails = np.flatnonzero(nxt == np.arange(n))
    if tails.size != 1:
        raise ValueError("list must have exactly one tail (self-loop)")
    tail = int(tails[0])
    prev = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        if i != tail:
            if prev[nxt[i]] != -1:
                raise ValueError("not a list: two nodes share a successor")
            prev[nxt[i]] = i
    rank = np.zeros(n, dtype=np.int64)
    node, r = tail, 0
    for _ in range(n - 1):
        node = int(prev[node])
        if node == -1:
            raise ValueError("list is disconnected")
        r += 1
        rank[node] = r
    return rank


def ruling_set_pram(
    nxt: np.ndarray,
    seed: int = 0,
    mode: ConcurrencyMode = ConcurrencyMode.CREW,
) -> tuple[np.ndarray, PRAM]:
    """Work-efficient list ranking via sparse ruling sets.

    Phases (memory layout: rank[0:n], next[n:2n), contracted wrank/cnext
    in [2n, 2n+2m)):

    1. find the head (one O(n) marking pass) and sample ~n/log n rulers,
       always including head and tail;
    2. walk the segment after each ruler in parallel lock-step rounds —
       total reads = n (each node visited once), rounds = longest segment
       (O(log n) w.h.p. for random rulers);
    3. weighted Wyllie on the contracted m-ruler list: O(m log m) = O(n)
       work;
    4. expand: rank(v) = wrank(ruler(v)) - offset(v), two O(n) sweeps.

    Total work Theta(n) — matching the serial algorithm up to constants —
    with polylog steps; contrast with :func:`pointer_jumping_pram`'s
    Theta(n log n).  Per-segment bookkeeping (ruler-of / offset mirrors)
    is charged as one compute op per visited node.
    """
    nxt0 = np.asarray(nxt, dtype=np.int64)
    n = nxt0.size
    if n < 1:
        raise ValueError("empty list")
    rng = np.random.default_rng(seed)

    tails = np.flatnonzero(nxt0 == np.arange(n))
    if tails.size != 1:
        raise ValueError("list must have exactly one tail (self-loop)")
    tail = int(tails[0])

    # ruler sampling (head found below, on the machine)
    log_n = max(1, int(np.log2(max(2, n))))
    target = max(1, n // log_n)
    sampled = rng.choice(n, size=min(n, target), replace=False)

    # machine setup after m is known
    is_ruler = np.zeros(n, dtype=bool)
    is_ruler[sampled] = True
    is_ruler[tail] = True

    # phase 1: head = the node nobody points to (O(n) marking pass)
    has_pred = np.zeros(n, dtype=bool)
    non_tail = np.flatnonzero(np.arange(n) != tail)
    has_pred[nxt0[non_tail]] = True
    head = int(np.flatnonzero(~has_pred)[0]) if (~has_pred).any() else tail
    is_ruler[head] = True

    rulers = np.flatnonzero(is_ruler).astype(np.int64)
    m = rulers.size
    ruler_slot = np.full(n, -1, dtype=np.int64)
    ruler_slot[rulers] = np.arange(m)

    pram = PRAM(n, 2 * n + 2 * m, mode=mode)
    pram.memory[n : 2 * n] = nxt0
    wrank_base, cnext_base = 2 * n, 2 * n + m
    # charge the head-finding pass: one read + one mark per node
    pram.read_all(n + np.arange(n))
    pram.par_compute(n)

    # phase 2: parallel segment walks
    ruler_of = np.empty(n, dtype=np.int64)
    offset = np.zeros(n, dtype=np.int64)
    ruler_of[rulers] = rulers
    cur = rulers.copy()
    steps = np.zeros(m, dtype=np.int64)
    seg_next = np.full(m, -1, dtype=np.int64)
    seg_len = np.zeros(m, dtype=np.int64)
    alive = np.ones(m, dtype=bool)
    while alive.any():
        act = np.flatnonzero(alive)
        nx = pram.read_all(n + cur[act])
        pram.par_compute(act.size)  # bookkeeping per visited node
        for k, slot in enumerate(act):
            target_node = int(nx[k])
            steps[slot] += 1
            if is_ruler[target_node] or target_node == int(cur[slot]):
                seg_next[slot] = ruler_slot[target_node]
                seg_len[slot] = steps[slot] if target_node != int(cur[slot]) else steps[slot] - 1
                alive[slot] = False
            else:
                ruler_of[target_node] = rulers[slot]
                offset[target_node] = steps[slot]
                cur[slot] = target_node

    # tail's segment: self-loop, length 0
    tslot = int(ruler_slot[tail])
    seg_next[tslot] = tslot
    seg_len[tslot] = 0

    # phase 3: weighted Wyllie over the m rulers
    pram.write_all(wrank_base + np.arange(m), seg_len)
    pram.write_all(cnext_base + np.arange(m), seg_next)
    ids = np.arange(m, dtype=np.int64)
    for _ in range(max(1, int(np.ceil(np.log2(max(2, m)))))):
        succ = pram.read_all(cnext_base + ids)
        succ_rank = pram.read_all(wrank_base + succ)
        my = pram.read_all(wrank_base + ids)
        pram.write_all(wrank_base + ids, my + succ_rank)
        succ_succ = pram.read_all(cnext_base + succ)
        pram.write_all(cnext_base + ids, succ_succ)

    # phase 4: expansion
    all_ids = np.arange(n, dtype=np.int64)
    ruler_ranks = pram.read_all(wrank_base + ruler_slot[ruler_of[all_ids]])
    pram.write_all(all_ids, ruler_ranks - offset)
    return pram.memory[:n].copy(), pram


def pointer_jumping_pram(
    nxt: np.ndarray,
    mode: ConcurrencyMode = ConcurrencyMode.CREW,
) -> tuple[np.ndarray, PRAM]:
    """Wyllie's pointer jumping on the vectorized PRAM.

    Memory layout: rank in [0, n), next in [n, 2n).  Each of the
    ceil(log2 n) rounds does 4 PRAM-emulated sweeps (read rank[next],
    add+write rank, read next[next], write next).  Returns
    (ranks, machine) with work/step counters.
    """
    nxt0 = np.asarray(nxt, dtype=np.int64)
    n = nxt0.size
    if n < 1:
        raise ValueError("empty list")
    pram = PRAM(n, 2 * n, mode=mode)
    # rank[i] = 0 if tail else 1
    pram.memory[:n] = (nxt0 != np.arange(n)).astype(np.int64)
    pram.memory[n : 2 * n] = nxt0

    ids = np.arange(n, dtype=np.int64)
    rounds = max(1, int(np.ceil(np.log2(max(2, n)))))
    for _ in range(rounds):
        succ = pram.read_all(n + ids)
        succ_rank = pram.read_all(succ)        # concurrent at the tail: CREW
        my_rank = pram.read_all(ids)
        pram.write_all(ids, my_rank + succ_rank)
        succ_succ = pram.read_all(n + succ)    # jump
        pram.write_all(n + ids, succ_succ)
    return pram.memory[:n].copy(), pram
