"""Schedulers: mapping computation DAGs onto P workers.

Blelloch's statement leans on the existence of "a scheduler that maps
abstract tasks to actual processors" with "some clear translation of costs
from the model to the machine".  This module provides three such schedulers
with full instrumentation, so the translation can be *measured*:

``greedy_schedule``
    Canonical list scheduling — never leaves a worker idle while a task is
    ready.  This is the schedule Brent's theorem bounds.
``work_stealing_schedule``
    Randomized work stealing (Cilk-style): per-worker deques, owners pop
    from the bottom, thieves steal from the top of a uniformly random
    victim.  Seeded and reproducible.  Satisfies T_P <= W/P + O(D) in
    expectation; claim C10's bench measures the constant.
``centralized_queue_schedule``
    A single shared FIFO with an optional per-dequeue contention penalty —
    the "heavyweight mechanism" Yelick's statement warns about.

All three return a :class:`Schedule` carrying the makespan, per-task start
times, a per-step utilization trace, and (for stealing) steal statistics.

:func:`checkpointed_schedule` wraps any of them in checkpoint/replay
resilience: when the active :mod:`repro.faults` plan injects an executor
fault mid-run, execution resumes from the last completed checkpoint —
tasks finished by then keep their slots, in-flight work is re-executed —
and the honest overhead (extra steps vs. the fault-free schedule) is
reported instead of hidden.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.faults.inject import active as _faults_active
from repro.models.workdepth import Dag
from repro.obs import Session, active as _obs_active
from repro.runtime.tasks import ReadyTracker

__all__ = [
    "Schedule",
    "CheckpointedRun",
    "greedy_schedule",
    "work_stealing_schedule",
    "centralized_queue_schedule",
    "checkpointed_schedule",
]


def _publish_schedule(sess: Session, kind: str, sched: "Schedule") -> None:
    """Record one schedule's counters into the active obs session.

    Counter semantics: totals accumulate across every schedule run in the
    session (so a bench's dump is the whole bench); utilization is a gauge
    holding the most recent run.
    """
    m = sess.metrics
    m.counter("scheduler.runs", scheduler=kind).inc()
    m.counter("scheduler.tasks", scheduler=kind).add(len(sched.start_times))
    m.counter("scheduler.busy_steps", scheduler=kind).add(sched.busy_steps)
    m.counter("scheduler.makespan_cycles", scheduler=kind).add(sched.length)
    m.counter("scheduler.steal_attempts", scheduler=kind).add(sched.steal_attempts)
    m.counter(
        "scheduler.steal_successes", better="higher", scheduler=kind
    ).add(sched.successful_steals)
    m.gauge("scheduler.utilization", scheduler=kind).set(sched.utilization)


@dataclass
class Schedule:
    """Result of scheduling a DAG on ``p`` workers.

    Attributes
    ----------
    length:
        Makespan T_P in time steps.
    p:
        Number of workers.
    start_times:
        Task id -> start step.
    assignments:
        Task id -> worker id.
    busy_steps:
        Total worker-steps spent executing tasks (equals DAG work).
    utilization:
        busy_steps / (length * p); 1.0 means no idling at all.
    steal_attempts / successful_steals:
        Work-stealing statistics (zero for the other schedulers).
    """

    length: int
    p: int
    start_times: dict[int, int] = field(default_factory=dict)
    assignments: dict[int, int] = field(default_factory=dict)
    busy_steps: int = 0
    steal_attempts: int = 0
    successful_steals: int = 0

    @property
    def utilization(self) -> float:
        if self.length == 0:
            return 1.0
        return self.busy_steps / (self.length * self.p)

    def validate_against(self, dag: Dag) -> None:
        """Check the schedule respects dependences and worker capacity.

        Raises ``AssertionError`` with a description on the first violation;
        used by tests and by the claim benches as a self-check.
        """
        assert len(self.start_times) == dag.n_nodes, "not all tasks scheduled"
        finish = {
            u: self.start_times[u] + dag.durations[u] for u in self.start_times
        }
        for u in range(dag.n_nodes):
            for v in dag.successors[u]:
                assert self.start_times[v] >= finish[u], (
                    f"task {v} starts at {self.start_times[v]} before "
                    f"predecessor {u} finishes at {finish[u]}"
                )
        # capacity: no more than p tasks running at any step
        events: dict[int, int] = {}
        for u, s in self.start_times.items():
            events[s] = events.get(s, 0) + 1
            events[finish[u]] = events.get(finish[u], 0) - 1
        running = 0
        for t in sorted(events):
            running += events[t]
            assert running <= self.p, f"{running} tasks running at step {t} > p={self.p}"
        assert max(finish.values(), default=0) == self.length, "length mismatch"


def greedy_schedule(dag: Dag, p: int) -> Schedule:
    """Greedy (Brent) list scheduling: FIFO among ready tasks.

    Event-driven: maintains a heap of (finish_time, worker) for running
    tasks and a FIFO of ready tasks; whenever a worker frees up, it takes
    the oldest ready task.  O((V + E) log V).
    """
    if p < 1:
        raise ValueError("p must be positive")
    sess = _obs_active()
    if sess is None:
        return _greedy_run(dag, p, None)
    with sess.span("schedule.greedy", cat="scheduler", p=p, tasks=dag.n_nodes) as span:
        sched = _greedy_run(dag, p, sess)
        span.set_cycles(sched.length).set(utilization=round(sched.utilization, 4))
    _publish_schedule(sess, "greedy", sched)
    return sched


def _greedy_run(dag: Dag, p: int, sess: Session | None) -> Schedule:
    qdepth = (
        sess.histogram("scheduler.queue_depth", scheduler="greedy")
        if sess is not None
        else None
    )
    tracker = ReadyTracker(dag)
    ready: deque[int] = deque(tracker.initial_ready())
    sched = Schedule(length=0, p=p)
    running: list[tuple[int, int, int]] = []  # (finish_time, worker, task)
    free_workers = list(range(p - 1, -1, -1))
    now = 0
    while ready or running:
        if qdepth is not None:
            qdepth.observe(len(ready))
        # dispatch
        while ready and free_workers:
            task = ready.popleft()
            w = free_workers.pop()
            dur = dag.durations[task]
            sched.start_times[task] = now
            sched.assignments[task] = w
            sched.busy_steps += dur
            heapq.heappush(running, (now + dur, w, task))
        if not running:
            if ready:  # all tasks zero-duration handled below
                continue
            break
        # advance to next completion time
        now = running[0][0]
        while running and running[0][0] == now:
            _, w, task = heapq.heappop(running)
            free_workers.append(w)
            ready.extend(tracker.complete(task))
    if not tracker.all_done:
        raise ValueError("DAG not fully scheduled (disconnected cycle?)")
    sched.length = now
    return sched


def work_stealing_schedule(dag: Dag, p: int, seed: int = 0) -> Schedule:
    """Randomized work stealing, simulated step-by-step.

    Per step, each worker with a current task executes one unit of it.  A
    worker with an empty deque and no current task makes one steal attempt
    at a uniformly random other worker, taking the *top* (oldest) task of
    the victim's deque; the attempt costs the step.  When a task completes,
    its newly-ready successors are pushed on the *bottom* of the finishing
    worker's deque (preserving the depth-first order Cilk relies on).
    """
    if p < 1:
        raise ValueError("p must be positive")
    sess = _obs_active()
    if sess is None:
        return _stealing_run(dag, p, seed, None)
    with sess.span(
        "schedule.work_stealing", cat="scheduler", p=p, tasks=dag.n_nodes, seed=seed
    ) as span:
        sched = _stealing_run(dag, p, seed, sess)
        span.set_cycles(sched.length).set(
            utilization=round(sched.utilization, 4),
            steal_attempts=sched.steal_attempts,
            successful_steals=sched.successful_steals,
        )
    _publish_schedule(sess, "work_stealing", sched)
    return sched


def _stealing_run(dag: Dag, p: int, seed: int, sess: Session | None) -> Schedule:
    qdepth = (
        sess.histogram("scheduler.queue_depth", scheduler="work_stealing")
        if sess is not None
        else None
    )
    rng = np.random.default_rng(seed)
    tracker = ReadyTracker(dag)
    deques: list[deque[int]] = [deque() for _ in range(p)]
    # scatter the initial sources round-robin (cold start)
    for i, t in enumerate(tracker.initial_ready()):
        deques[i % p].append(t)

    current: list[int | None] = [None] * p
    remaining = list(dag.durations)
    sched = Schedule(length=0, p=p)
    n_done = 0
    now = 0
    total = dag.n_nodes
    # guard against infinite loops from bugs (generous: stealing is random)
    max_steps = 1000 * (dag.work() + dag.span() + total + p) + 10_000
    while n_done < total:
        now += 1
        if now > max_steps:  # pragma: no cover - defensive
            raise RuntimeError("work-stealing simulation did not converge")
        if qdepth is not None:
            qdepth.observe(sum(len(d) for d in deques))
        completed_this_step: list[tuple[int, int]] = []  # (worker, task)
        stealers: list[int] = []
        for w in range(p):
            # acquire work, absorbing zero-duration bookkeeping strands
            # for free within the step (their successors enqueue inline)
            while current[w] is None and deques[w]:
                task = deques[w].pop()  # bottom = newest (LIFO for owner)
                sched.start_times[task] = now - 1
                sched.assignments[task] = w
                if remaining[task] == 0:
                    n_done += 1
                    for v in tracker.complete(task):
                        deques[w].append(v)
                else:
                    current[w] = task
            if current[w] is None:
                stealers.append(w)
                continue
            task = current[w]
            remaining[task] -= 1
            sched.busy_steps += 1
            if remaining[task] == 0:
                completed_this_step.append((w, task))
                current[w] = None
        # steal phase: steals land at end of step (victim set snapshot)
        for w in stealers:
            sched.steal_attempts += 1
            if p == 1:
                continue
            victim = int(rng.integers(0, p - 1))
            if victim >= w:
                victim += 1
            if deques[victim]:
                stolen = deques[victim].popleft()  # top = oldest
                deques[w].append(stolen)
                sched.successful_steals += 1
        # completion phase
        for w, task in completed_this_step:
            n_done += 1
            for v in tracker.complete(task):
                deques[w].append(v)
    sched.length = now
    return sched


def centralized_queue_schedule(
    dag: Dag, p: int, dequeue_penalty: int = 0
) -> Schedule:
    """A single shared FIFO queue with an optional per-dequeue penalty.

    ``dequeue_penalty`` models the serialization cost of a heavyweight
    shared structure: each dispatch occupies the queue for ``1 +
    dequeue_penalty`` steps, during which no other worker can dequeue.
    With penalty 0 this coincides with greedy scheduling (and is checked
    against it in the tests).
    """
    if p < 1:
        raise ValueError("p must be positive")
    if dequeue_penalty < 0:
        raise ValueError("penalty must be non-negative")
    sess = _obs_active()
    if sess is None:
        return _centralized_run(dag, p, dequeue_penalty, None)
    with sess.span(
        "schedule.centralized",
        cat="scheduler",
        p=p,
        tasks=dag.n_nodes,
        dequeue_penalty=dequeue_penalty,
    ) as span:
        sched = _centralized_run(dag, p, dequeue_penalty, sess)
        span.set_cycles(sched.length).set(utilization=round(sched.utilization, 4))
    _publish_schedule(sess, "centralized", sched)
    return sched


def _centralized_run(
    dag: Dag, p: int, dequeue_penalty: int, sess: Session | None
) -> Schedule:
    qdepth = (
        sess.histogram("scheduler.queue_depth", scheduler="centralized")
        if sess is not None
        else None
    )
    tracker = ReadyTracker(dag)
    ready: deque[int] = deque(tracker.initial_ready())
    sched = Schedule(length=0, p=p)
    worker_free_at = [0] * p
    queue_free_at = 0
    finish_heap: list[tuple[int, int]] = []  # (finish_time, task)
    scheduled = 0
    total = dag.n_nodes
    while scheduled < total:
        if qdepth is not None:
            qdepth.observe(len(ready))
        if ready:
            task = ready.popleft()
            w = min(range(p), key=lambda i: worker_free_at[i])
            grab = max(worker_free_at[w], queue_free_at)
            queue_free_at = grab + 1 + dequeue_penalty if dequeue_penalty else grab
            start = grab
            dur = dag.durations[task]
            sched.start_times[task] = start
            sched.assignments[task] = w
            sched.busy_steps += dur
            worker_free_at[w] = start + dur
            heapq.heappush(finish_heap, (start + dur, task))
            scheduled += 1
        else:
            if not finish_heap:
                raise ValueError("DAG not fully schedulable")
            t, task = heapq.heappop(finish_heap)
            queue_free_at = max(queue_free_at, t)
            ready.extend(tracker.complete(task))
    # drain completions
    while finish_heap:
        t, task = heapq.heappop(finish_heap)
        ready.extend(tracker.complete(task))
    sched.length = max(worker_free_at) if total else 0
    return sched


# ---------------------------------------------------------------------- #
# checkpoint / replay resilience


@dataclass
class CheckpointedRun:
    """Outcome of a (possibly fault-interrupted) checkpointed execution.

    ``schedule`` is the *combined* schedule: tasks completed before the
    checkpoint keep their original slots; everything else (including work
    in flight when the executor died, which is lost and re-executed) is
    replayed after the checkpoint.  ``overhead_steps`` is the honest cost
    of the fault: combined makespan minus the fault-free makespan.
    """

    schedule: Schedule
    base_length: int
    fault_step: int | None = None
    checkpoint_step: int = 0
    replayed_tasks: int = 0
    recovered: bool = True

    @property
    def faulted(self) -> bool:
        return self.fault_step is not None

    @property
    def overhead_steps(self) -> int:
        return self.schedule.length - self.base_length


def _restrict_dag(dag: Dag, keep: list[int]) -> tuple[Dag, dict[int, int]]:
    """The sub-DAG induced by ``keep`` (edges among kept nodes only).

    Returns the new DAG plus the old-id -> new-id map.  ``keep`` must be
    sorted ascending so the sub-DAG preserves the original id order.
    """
    idx = {u: k for k, u in enumerate(keep)}
    sub = Dag()
    for u in keep:
        sub.add_node(dag.durations[u])
    for u in keep:
        for v in dag.successors[u]:
            if v in idx:
                sub.add_edge(idx[u], idx[v])
    return sub, idx


def checkpointed_schedule(
    dag: Dag,
    p: int,
    scheduler: Callable[..., Schedule] = greedy_schedule,
    checkpoint_every: int = 64,
    **scheduler_kwargs,
) -> CheckpointedRun:
    """Run ``scheduler`` under checkpoint/replay fault resilience.

    The fault-free schedule is computed first; if the active fault plan
    injects an executor fault at step ``t``, everything completed by the
    last checkpoint (the largest multiple of ``checkpoint_every`` not
    after ``t``) survives, and the remaining sub-DAG — including tasks
    that were mid-flight at the checkpoint, whose partial work is lost —
    is re-scheduled from scratch on the same ``p`` workers.  Without an
    injection scope (or when the plan spares this run) the fault-free
    schedule is returned untouched, so the wrapper is free when chaos is
    off.

    Determinism: the fault step is a pure function of the plan's seed and
    the fault-free makespan; the replay uses the same (deterministic)
    scheduler.  The combined schedule satisfies every dependence and the
    worker capacity bound — ``Schedule.validate_against`` accepts it.
    """
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    base = scheduler(dag, p, **scheduler_kwargs)
    inj = _faults_active()
    fault_step = (
        inj.plan.executor_fault_step(base.length) if inj is not None else None
    )
    if fault_step is None:
        return CheckpointedRun(schedule=base, base_length=base.length)

    inj.injected("executor", f"step={fault_step}")
    ckpt = (fault_step // checkpoint_every) * checkpoint_every
    finish = {u: base.start_times[u] + dag.durations[u] for u in base.start_times}
    done = sorted(u for u, f in finish.items() if f <= ckpt)
    rest = sorted(set(range(dag.n_nodes)) - set(done))
    if not rest:
        # the fault landed after all real work had finished; nothing lost
        inj.recovered("executor", f"step={fault_step} nothing to replay")
        return CheckpointedRun(
            schedule=base,
            base_length=base.length,
            fault_step=fault_step,
            checkpoint_step=ckpt,
        )

    sub, idx = _restrict_dag(dag, rest)
    resume = scheduler(sub, p, **scheduler_kwargs)
    combined = Schedule(length=ckpt + resume.length, p=p)
    for u in done:
        combined.start_times[u] = base.start_times[u]
        combined.assignments[u] = base.assignments[u]
        combined.busy_steps += dag.durations[u]
    for u in rest:
        k = idx[u]
        combined.start_times[u] = ckpt + resume.start_times[k]
        combined.assignments[u] = resume.assignments[k]
    combined.busy_steps += resume.busy_steps
    combined.steal_attempts = base.steal_attempts + resume.steal_attempts
    combined.successful_steals = base.successful_steals + resume.successful_steals
    inj.recovered("executor", f"step={fault_step} replayed {len(rest)} tasks")

    run = CheckpointedRun(
        schedule=combined,
        base_length=base.length,
        fault_step=fault_step,
        checkpoint_step=ckpt,
        replayed_tasks=len(rest),
    )
    sess = _obs_active()
    if sess is not None:
        m = sess.metrics
        m.counter("scheduler.checkpoint_replays").inc()
        m.counter("scheduler.replayed_tasks").add(len(rest))
        m.counter("scheduler.replay_overhead_steps").add(
            max(0, run.overhead_steps)
        )
    return run
