"""Fork-join runtime: the programming model Blelloch's statement advocates.

``fork_join`` provides a spawn/sync DSL that records a series-parallel
computation DAG while computing real values; ``scheduler`` maps such DAGs
onto P workers (greedy list scheduling, randomized work stealing, and a
centralized queue) so Brent's bound and scheduler overheads can be measured
rather than assumed; ``tasks`` holds the ready-set bookkeeping they share.
"""

from repro.runtime.fork_join import ForkJoin, analyze
from repro.runtime.scheduler import (
    Schedule,
    greedy_schedule,
    work_stealing_schedule,
    centralized_queue_schedule,
)

__all__ = [
    "ForkJoin",
    "analyze",
    "Schedule",
    "greedy_schedule",
    "work_stealing_schedule",
    "centralized_queue_schedule",
]
