"""Ready-set bookkeeping shared by the schedulers.

A :class:`ReadyTracker` watches a :class:`~repro.models.workdepth.Dag` and
maintains the set of tasks whose predecessors have all completed.  The
schedulers in :mod:`repro.runtime.scheduler` differ only in *which* ready
task runs *where*; the dependence bookkeeping is identical, so it lives
here.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.models.workdepth import Dag

__all__ = ["ReadyTracker"]


class ReadyTracker:
    """Incremental ready-set maintenance over a fixed DAG.

    ``complete(u)`` marks ``u`` done and returns the tasks newly enabled by
    it, in successor order (deterministic given the DAG).
    """

    def __init__(self, dag: Dag) -> None:
        self.dag = dag
        self._remaining = np.array(
            [len(p) for p in dag.predecessors], dtype=np.int64
        )
        self._done = np.zeros(dag.n_nodes, dtype=bool)
        self.n_completed = 0

    def initial_ready(self) -> list[int]:
        """All source tasks (no predecessors), in id order."""
        return [i for i in range(self.dag.n_nodes) if self._remaining[i] == 0]

    def complete(self, u: int) -> list[int]:
        """Mark ``u`` complete; return newly-ready successors."""
        if self._done[u]:
            raise ValueError(f"task {u} completed twice")
        self._done[u] = True
        self.n_completed += 1
        newly = []
        for v in self.dag.successors[u]:
            self._remaining[v] -= 1
            if self._remaining[v] == 0:
                newly.append(v)
            elif self._remaining[v] < 0:  # pragma: no cover - defensive
                raise ValueError(f"task {v} enabled more times than it has deps")
        return newly

    def complete_many(self, tasks: Iterable[int]) -> list[int]:
        """Complete several tasks; return the union of newly-ready sets."""
        out: list[int] = []
        for u in tasks:
            out.extend(self.complete(u))
        return out

    @property
    def all_done(self) -> bool:
        return self.n_completed == self.dag.n_nodes
