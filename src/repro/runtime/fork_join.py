"""Fork-join DSL: write the algorithm once, get values *and* a work-span DAG.

Blelloch's statement argues the fork-join work-depth model is "simple, uses
simple constructs in programming languages, and supports cost mappings down
to the machine level".  This module supplies those constructs for Python:

*  ``fj.spawn(fn, *args)`` — fork ``fn`` as a logically-parallel child;
   returns a :class:`Future` whose ``.value`` is available after ``sync``;
*  ``fj.sync()`` — join all children spawned in the current activation;
*  ``fj.work(k)`` — charge ``k`` units of computation to the current strand;
*  ``fj.parallel_for(n, body, grain=...)`` — divide-and-conquer parallel
   loop with span ``O(log n)`` plus the body span.

Execution is ordinary depth-first Python (deterministic, debuggable), but a
series-parallel :class:`~repro.models.workdepth.Dag` of *strands* is
recorded on the side.  The DAG's work/span feed Brent's bound and the
schedulers, giving the model's promised "clear translation of costs" —
measured, not asserted.

Semantics notes
---------------
*  A *strand* is a maximal run of serial work between fork/join points; its
   duration is whatever ``fj.work`` charged to it.
*  Each spawned activation (and the root) owns a frame; ``sync`` joins the
   children of the innermost frame.  Spawned activations auto-sync on
   return, as in Cilk, so a child's outstanding grandchildren can never
   leak past it.
*  Helper functions called *inline* (ordinary Python calls) share the
   caller's frame: their spawns become the caller's children.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.models.workdepth import Dag

__all__ = ["Future", "ForkJoin", "AnalysisResult", "analyze"]


class Future:
    """Result cell for a spawned computation.

    Reading ``.value`` before the owning frame has synced raises — that is
    a determinacy race in the fork-join model, and we make it a hard error.
    """

    __slots__ = ("_value", "_ready")

    def __init__(self) -> None:
        self._value: Any = None
        self._ready = False

    def _set(self, value: Any) -> None:
        self._value = value
        self._ready = True

    @property
    def value(self) -> Any:
        if not self._ready:
            raise RuntimeError(
                "future read before sync(): this is a determinacy race"
            )
        return self._value


@dataclass
class _Frame:
    pending: list[int]  # end-strand node ids of un-synced children
    pending_futures: list[Future]


class ForkJoin:
    """A fork-join computation recorder.

    Use :func:`analyze` for the common run-and-measure case; instantiate
    directly when the caller wants to inspect the DAG mid-flight.
    """

    def __init__(self) -> None:
        self.dag = Dag()
        self._current: int = self.dag.add_node(0)
        self._frames: list[_Frame] = [_Frame([], [])]
        self._running = False

    # ------------------------------------------------------------------ #
    # DSL
    # ------------------------------------------------------------------ #

    def work(self, amount: int = 1) -> None:
        """Charge ``amount`` units of serial work to the current strand."""
        if amount < 0:
            raise ValueError(f"work must be non-negative, got {amount}")
        self.dag.durations[self._current] += int(amount)

    def spawn(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """Fork ``fn(self, *args, **kwargs)`` as a parallel child.

        The child executes immediately (depth-first) for value purposes,
        but in the recorded DAG it runs in parallel with the caller's
        continuation.  The child gets its own frame and auto-syncs on
        return.
        """
        fork_point = self._current
        # child strand
        child_start = self.dag.add_node(0)
        self.dag.add_edge(fork_point, child_start)
        self._current = child_start
        self._frames.append(_Frame([], []))
        try:
            result = fn(self, *args, **kwargs)
            self._auto_sync()
        finally:
            child_end = self._current
            self._frames.pop()
            # continuation strand of the parent
            cont = self.dag.add_node(0)
            self.dag.add_edge(fork_point, cont)
            self._current = cont
        fut = Future()
        fut._value = result  # stored, but not readable until sync()
        frame = self._frames[-1]
        frame.pending.append(child_end)
        frame.pending_futures.append(fut)
        return fut

    def sync(self) -> None:
        """Join all children spawned (and not yet synced) in this frame."""
        frame = self._frames[-1]
        if not frame.pending:
            return
        join = self.dag.add_node(0)
        self.dag.add_edge(self._current, join)
        for end in frame.pending:
            self.dag.add_edge(end, join)
        for fut in frame.pending_futures:
            fut._ready = True
        frame.pending.clear()
        frame.pending_futures.clear()
        self._current = join

    def _auto_sync(self) -> None:
        self.sync()

    def parallel_for(
        self,
        n: int,
        body: Callable[["ForkJoin", int], Any],
        grain: int = 1,
    ) -> None:
        """Run ``body(fj, i)`` for i in [0, n) with logarithmic span.

        ``grain`` controls the serial leaf size (larger grain = less
        fork-join overhead, more serial work per strand — the classic
        granularity knob).
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if grain < 1:
            raise ValueError("grain must be >= 1")
        if n == 0:
            return

        def recurse(fj: "ForkJoin", lo: int, hi: int) -> None:
            if hi - lo <= grain:
                for i in range(lo, hi):
                    body(fj, i)
                return
            mid = (lo + hi) // 2
            fj.spawn(recurse, lo, mid)
            fj.spawn(recurse, mid, hi)
            fj.sync()

        recurse(self, 0, n)

    # ------------------------------------------------------------------ #

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Execute ``fn(self, ...)`` as the root activation and return its value."""
        if self._running:
            raise RuntimeError("ForkJoin.run is not reentrant")
        self._running = True
        try:
            result = fn(self, *args, **kwargs)
            self.sync()
            return result
        finally:
            self._running = False


@dataclass(frozen=True)
class AnalysisResult:
    """Everything the work-depth model says about one computation."""

    value: Any
    dag: Dag
    work: int
    span: int

    @property
    def parallelism(self) -> float:
        return self.work / self.span if self.span else float("inf")


def analyze(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> AnalysisResult:
    """Run a fork-join computation and return value + work/span analysis.

    Example::

        def sum_rec(fj, a):
            if len(a) == 1:
                fj.work(1)
                return a[0]
            mid = len(a) // 2
            left = fj.spawn(sum_rec, a[:mid])
            right = sum_rec(fj, a[mid:])
            fj.sync()
            fj.work(1)
            return left.value + right

        res = analyze(sum_rec, [1, 2, 3, 4])
        res.value        # 10
        res.work         # Theta(n)
        res.span         # Theta(log n)
    """
    fj = ForkJoin()
    value = fj.run(fn, *args, **kwargs)
    return AnalysisResult(
        value=value, dag=fj.dag, work=fj.dag.work(), span=fj.dag.span()
    )
