"""repro.faults — deterministic fault injection and resilient execution.

The idealized model assumes a perfect machine; the panelists' dispute is
about what happens when it meets a real one.  This subsystem makes the
meeting reproducible: a :class:`FaultPlan` (a pure function of an integer
seed and a :class:`FaultSpec`) schedules PE fail-stops, NoC link-downs,
transient bit flips, misbehaving search workers, and executor crashes;
injection hooks in the grid machine, the NoC, the scheduler, and the
search pool consult the plan and *recover* — remapping off dead PEs,
detouring around dead links, replaying from checkpoints, retrying or
falling back in-process — while honestly accounting the cost of the
recovery.

Usage::

    from repro.faults import FaultPlan, FaultSpec, injection

    plan = FaultPlan(seed=7, spec=FaultSpec(pe_fail=0.2, worker_crash=0.5))
    with injection(plan) as inj:
        ...  # grid runs / NoC sims / searches inside see the faults
    assert inj.all_handled  # every injected fault recovered or surfaced

``python -m repro.faults.report`` runs a full seeded chaos campaign and
summarizes injected-vs-recovered plus the measured cost of resilience.
"""

from repro.faults.inject import FaultRecord, Injection, active, injection
from repro.faults.plan import (
    WORKER_FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    canonical_link,
    iter_mesh_links,
)

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultEvent",
    "FaultRecord",
    "Injection",
    "injection",
    "active",
    "canonical_link",
    "iter_mesh_links",
    "WORKER_FAULT_KINDS",
]
