"""Deterministic, seed-driven fault plans.

Real 5 nm-era fabrics lose PEs, drop NoC links, and suffer transient bit
flips; worker processes crash, hang, and return garbage.  The panel's
demand that costs be *explicit and measurable* extends to faults: a chaos
experiment whose faults cannot be replayed exactly is an anecdote, not a
measurement.  This module therefore makes the fault schedule a **pure
function of an integer seed and a** :class:`FaultSpec` — no global RNG is
read or written, and no enumeration order matters.

Each potential fault site (a PE, a mesh link, a dataflow node, a pool
task, an executor run) is assigned a deterministic uniform value in
``[0, 1)`` by hashing ``(seed, domain, site)`` with SHA-256; the site
faults iff that value falls below the spec's probability for its domain.
Two consequences worth the design:

*  the same ``(seed, spec)`` produces the *identical* fault schedule on
   every platform, process, and call order (property-tested in
   ``tests/properties/test_prop_faults.py``);
*  querying sites lazily (as the grid machine, NoC, scheduler, and search
   pool do) is exactly equivalent to materializing the whole schedule up
   front with :meth:`FaultPlan.schedule` — there is no hidden stream state
   to desynchronize.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultEvent",
    "WORKER_FAULT_KINDS",
    "canonical_link",
    "iter_mesh_links",
]

#: Worker fault kinds, in threshold-stacking order (see
#: :meth:`FaultPlan.worker_fault`).
WORKER_FAULT_KINDS = ("crash", "hang", "poison")

Place = tuple[int, int]
Link = tuple[Place, Place]


def canonical_link(a: Place, b: Place) -> Link:
    """Undirected mesh link as an ordered pair — both directions of a wire
    fail together, so both map to one canonical key."""
    return (a, b) if a <= b else (b, a)


def iter_mesh_links(width: int, height: int) -> Iterator[Link]:
    """Every undirected link of a W x H mesh, in canonical order."""
    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                yield ((x, y), (x + 1, y))
            if y + 1 < height:
                yield ((x, y), (x, y + 1))


@dataclass(frozen=True)
class FaultSpec:
    """Per-domain fault probabilities (all in ``[0, 1]``).

    Parameters
    ----------
    pe_fail:
        Probability each grid PE is fail-stopped (dead for the whole run).
    link_down:
        Probability each undirected mesh link is down.
    bitflip:
        Probability a compute node's result is transiently corrupted on
        the *first* execution attempt of a grid run (re-execution is
        clean — the flip is transient, the cell is not broken).
    worker_crash / worker_hang / worker_poison:
        Probability a pool task (crashes with an exception / hangs past
        the task timeout / returns a poisoned result) on a faulty attempt.
        The three must sum to at most 1 — one draw decides the kind.
    worker_faulty_attempts:
        Worker faults are injected only on attempts ``< worker_faulty_
        attempts``; the default 1 makes them transient (the first retry
        runs clean), larger values exercise the in-process fallback.
    executor_fail:
        Probability one executor fault interrupts a checkpointed schedule
        run (see :func:`repro.runtime.scheduler.checkpointed_schedule`).
    """

    pe_fail: float = 0.0
    link_down: float = 0.0
    bitflip: float = 0.0
    worker_crash: float = 0.0
    worker_hang: float = 0.0
    worker_poison: float = 0.0
    worker_faulty_attempts: int = 1
    executor_fail: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "pe_fail", "link_down", "bitflip", "worker_crash",
            "worker_hang", "worker_poison", "executor_fail",
        ):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1], got {v!r}")
        total = self.worker_crash + self.worker_hang + self.worker_poison
        if total > 1.0 + 1e-12:
            raise ValueError(
                f"worker_crash + worker_hang + worker_poison = {total} > 1; "
                "one draw decides the fault kind, so they must sum to <= 1"
            )
        if self.worker_faulty_attempts < 1:
            raise ValueError(
                f"worker_faulty_attempts must be >= 1, got "
                f"{self.worker_faulty_attempts}"
            )

    @property
    def any_worker_fault(self) -> float:
        return self.worker_crash + self.worker_hang + self.worker_poison


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` + the site it hits."""

    kind: str
    target: tuple
    detail: str = ""

    def __str__(self) -> str:
        d = f" ({self.detail})" if self.detail else ""
        return f"{self.kind}@{self.target}{d}"


@dataclass(frozen=True)
class FaultPlan:
    """The deterministic fault schedule for one ``(seed, spec)`` pair.

    Every query is a pure function of ``(seed, spec, site)``; see the
    module docstring for the derivation.  Query methods are cheap (one
    SHA-256 per site) and side-effect free, so hot paths consult the plan
    directly instead of carrying materialized fault sets around.
    """

    seed: int
    spec: FaultSpec

    def __post_init__(self) -> None:
        if not isinstance(self.seed, (int, np.integer)) or isinstance(self.seed, bool):
            raise TypeError(
                f"fault plan seed must be an int (got {self.seed!r}): chaos "
                "runs must be replayable, so implicit/global seeding is not "
                "supported"
            )

    # ------------------------------------------------------------------ #
    # the deterministic uniform draw

    def _unit(self, domain: str, *site: object) -> float:
        payload = f"{int(self.seed)}|{domain}|{site!r}".encode()
        h = hashlib.sha256(payload).digest()
        return int.from_bytes(h[:8], "big") / 2.0**64

    # ------------------------------------------------------------------ #
    # site queries

    def pe_dead(self, place: Place) -> bool:
        """Is the PE at ``place`` fail-stopped?"""
        p = self.spec.pe_fail
        return p > 0.0 and self._unit("pe", int(place[0]), int(place[1])) < p

    def dead_pes(self, width: int, height: int) -> set[Place]:
        return {
            (x, y)
            for y in range(height)
            for x in range(width)
            if self.pe_dead((x, y))
        }

    def link_dead(self, a: Place, b: Place) -> bool:
        """Is the (undirected) mesh link ``a -- b`` down?"""
        p = self.spec.link_down
        return p > 0.0 and self._unit("link", canonical_link(a, b)) < p

    def dead_links(self, width: int, height: int) -> set[Link]:
        return {
            link
            for link in iter_mesh_links(width, height)
            if self._unit("link", link) < self.spec.link_down
        } if self.spec.link_down > 0.0 else set()

    def bitflip(self, nid: int) -> bool:
        """Is node ``nid``'s result transiently flipped on first execution?"""
        p = self.spec.bitflip
        return p > 0.0 and self._unit("flip", int(nid)) < p

    def worker_fault(self, task_index: int, attempt: int) -> str | None:
        """Fault kind for pool task ``task_index`` on ``attempt`` (or None).

        One draw per (task, attempt); the kind is decided by stacking the
        crash / hang / poison probabilities in :data:`WORKER_FAULT_KINDS`
        order.  Attempts at or beyond ``spec.worker_faulty_attempts`` are
        never faulted (the fault is transient by default).
        """
        s = self.spec
        if attempt >= s.worker_faulty_attempts or s.any_worker_fault <= 0.0:
            return None
        u = self._unit("worker", int(task_index), int(attempt))
        threshold = 0.0
        for kind in WORKER_FAULT_KINDS:
            threshold += getattr(s, f"worker_{kind}")
            if u < threshold:
                return kind
        return None

    def executor_fault_step(self, schedule_length: int) -> int | None:
        """Step (in ``[1, schedule_length]``) at which the executor dies,
        or None for a fault-free run."""
        p = self.spec.executor_fail
        if schedule_length <= 0 or p <= 0.0 or self._unit("executor") >= p:
            return None
        return 1 + int(self._unit("executor", "step") * schedule_length)

    # ------------------------------------------------------------------ #
    # the materialized schedule

    def schedule(
        self,
        width: int = 0,
        height: int = 0,
        n_nodes: int = 0,
        n_tasks: int = 0,
        schedule_length: int = 0,
    ) -> list[FaultEvent]:
        """Every fault the plan injects over the given campaign shape.

        Purely a re-enumeration of the lazy queries — used by the report
        CLI and by the determinism property tests; injection hooks never
        need it.
        """
        events: list[FaultEvent] = []
        for place in sorted(self.dead_pes(width, height)):
            events.append(FaultEvent("pe_fail", place))
        for link in sorted(self.dead_links(width, height)):
            events.append(FaultEvent("link_down", link))
        for nid in range(n_nodes):
            if self.bitflip(nid):
                events.append(FaultEvent("bitflip", (nid,)))
        for task in range(n_tasks):
            for attempt in range(self.spec.worker_faulty_attempts):
                kind = self.worker_fault(task, attempt)
                if kind is not None:
                    events.append(
                        FaultEvent(
                            f"worker_{kind}", (task,), detail=f"attempt={attempt}"
                        )
                    )
        step = self.executor_fault_step(schedule_length)
        if step is not None:
            events.append(FaultEvent("executor", (step,)))
        return events
