"""CLI: run a seeded chaos campaign and report injected-vs-recovered.

The acceptance bar for the fault subsystem is behavioural: a seeded chaos
campaign (PE + link + worker + executor faults) over the edit-distance and
matmul graphs must complete without hangs, return results bit-identical to
the fault-free golden run whenever recovery succeeds, and account every
injected fault as recovered or explicitly surfaced.  This tool *is* that
campaign::

    python -m repro.faults.report --seed 7
    python -m repro.faults.report --seed 3 --pe-fail 0.2 --worker-crash 0.4 \\
        --timeout-s 5 --require-recovered --json obs_out/chaos.json

Exit codes: 0 — campaign clean (all recoveries correct); 1 — a gate flag
(``--require-recovered`` / ``--fail-on-unrecovered``) tripped; 2 — a
recovery *claimed* success but produced results different from the
fault-free oracle (a resilience bug, the one thing this tool exists to
catch).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any

from repro import obs
from repro.algorithms.edit_distance import edit_distance_graph
from repro.algorithms.matmul_fm import matmul_graph
from repro.core.default_mapper import default_mapping
from repro.core.mapping import GridSpec, Mapping
from repro.core.function import DataflowGraph
from repro.core.search import SearchEngine, sweep_placements
from repro.faults.inject import Injection, injection
from repro.faults.plan import FaultPlan, FaultSpec
from repro.machines.grid import GridMachine
from repro.machines.noc import Message, Noc
from repro.models.workdepth import Dag
from repro.runtime.scheduler import checkpointed_schedule
from repro.testing import SearchEquivalenceError, assert_search_equivalent

__all__ = ["main", "run_campaign"]


def _workloads() -> list[tuple[str, DataflowGraph, dict[str, Any]]]:
    """The campaign's grid workloads: the paper's two worked examples."""
    edit = edit_distance_graph(5)
    matmul = matmul_graph(3)
    return [
        ("edit-distance-5", edit, {"R": lambda i: (i * 7 + 3) % 5,
                                   "Q": lambda j: (j * 3 + 1) % 5}),
        ("matmul-3", matmul, {"A": lambda i, k: i + 2 * k + 1,
                              "B": lambda k, j: 3 * k - j + 2}),
    ]


def _edge_messages(graph: DataflowGraph, mapping: Mapping) -> list[Message]:
    """Inter-PE traffic of a mapped graph, as NoC messages (the same
    derivation the grid machine's contention mode uses)."""
    messages: list[Message] = []
    mid = 0
    for u, v in graph.edges():
        if mapping.offchip[u] or mapping.offchip[v]:
            continue
        pu, pv = mapping.place_of(u), mapping.place_of(v)
        if pu == pv:
            continue
        depart = int(mapping.time[u]) + (1 if graph.is_compute(u) else 0)
        messages.append(Message(mid=mid, src=pu, dst=pv, inject_cycle=depart))
        mid += 1
    return messages


def run_campaign(
    seed: int,
    spec: FaultSpec,
    grid: GridSpec | None = None,
    n_workers: int = 2,
    timeout_s: float = 20.0,
    max_retries: int = 2,
) -> tuple[dict[str, Any], Injection]:
    """One full chaos campaign; returns (summary document, fault ledger).

    The summary's ``oracle`` entries compare every chaos result against
    the fault-free golden run: any recovered component must match it
    exactly (``ok`` false means a resilience bug, not an injected fault).
    """
    grid = grid or GridSpec(4, 2)
    plan = FaultPlan(seed, spec)
    workloads = _workloads()

    # ---- golden (fault-free) pass ------------------------------------- #
    golden: dict[str, Any] = {}
    mappings: dict[str, Mapping] = {}
    machine = GridMachine(grid)
    for name, graph, inputs in workloads:
        m = default_mapping(graph, grid)
        mappings[name] = m
        golden[name] = machine.run(graph, m, inputs)
    edit_graph = workloads[0][1]
    ref_sweep = sweep_placements(edit_graph, grid)
    noc_messages = _edge_messages(edit_graph, mappings["edit-distance-5"])
    golden_noc = Noc(grid.width, grid.height, tech=grid.tech).simulate(noc_messages)
    dag = Dag.random_dag(60, 0.08, seed=seed, max_duration=3)

    # ---- chaos pass ---------------------------------------------------- #
    summary: dict[str, Any] = {
        "seed": seed,
        "spec": {k: getattr(spec, k) for k in (
            "pe_fail", "link_down", "bitflip", "worker_crash", "worker_hang",
            "worker_poison", "worker_faulty_attempts", "executor_fail")},
        "grid": f"{grid.width}x{grid.height}",
        "oracle": {},
        "cost": {},
    }
    engine = SearchEngine(
        parallel=True,
        n_workers=n_workers,
        task_timeout_s=timeout_s,
        max_retries=max_retries,
    )
    # non-strict: unrecovered faults must surface in the ledger, not crash
    chaos_machine = GridMachine(grid, strict=False)
    with obs.session(label=f"chaos-seed{seed}", write_on_exit=False) as sess, \
            injection(plan) as inj:
        for name, graph, inputs in workloads:
            res = chaos_machine.run(graph, mappings[name], inputs)
            base = golden[name]
            recovered_ok = res.verified and res.outputs == base.outputs
            summary["oracle"][name] = {
                "ok": recovered_ok or res.faults_injected > res.faults_recovered,
                "verified": res.verified,
                "outputs_match_golden": res.outputs == base.outputs,
                "remapped": res.remapped,
                "retries": res.retries,
            }
            summary["cost"][name] = {
                "golden_cycles": base.cost.cycles,
                "chaos_cycles": res.cost.cycles,
                "extra_cycles": res.cost.cycles - base.cost.cycles,
                "golden_energy_fj": base.cost.energy_total_fj,
                "chaos_energy_fj": res.cost.energy_total_fj,
            }

        try:
            chaos_sweep = sweep_placements(edit_graph, grid, engine=engine)
            assert_search_equivalent(chaos_sweep, ref_sweep, context="chaos sweep")
            summary["oracle"]["search"] = {"ok": True, "rows": len(chaos_sweep)}
        except SearchEquivalenceError as exc:
            summary["oracle"]["search"] = {"ok": False, "error": str(exc)}

        noc_report = Noc(grid.width, grid.height, tech=grid.tech).simulate(
            noc_messages
        )
        summary["cost"]["noc"] = {
            "messages": len(noc_messages),
            "golden_latency": golden_noc.total_latency,
            "chaos_latency": noc_report.total_latency,
            "rerouted": noc_report.rerouted,
            "extra_hops": noc_report.extra_hops,
            "extra_energy_fj": noc_report.extra_energy_fj,
            "undelivered": len(noc_report.undelivered),
        }
        summary["oracle"]["noc"] = {
            # undelivered messages are surfaced faults, not oracle failures
            "ok": noc_report.rerouted + len(noc_report.undelivered) > 0
            or noc_report.total_latency == golden_noc.total_latency,
        }

        run = checkpointed_schedule(dag, p=4, checkpoint_every=8)
        run.schedule.validate_against(dag)
        summary["cost"]["scheduler"] = {
            "base_steps": run.base_length,
            "chaos_steps": run.schedule.length,
            "overhead_steps": run.overhead_steps,
            "fault_step": run.fault_step,
            "checkpoint_step": run.checkpoint_step,
            "replayed_tasks": run.replayed_tasks,
        }
        summary["oracle"]["scheduler"] = {"ok": True, "faulted": run.faulted}

        summary["cost"]["search"] = {
            "pool_retries": sess.metrics.get_value("search.pool_retries") or 0,
            "pool_fallbacks": sess.metrics.get_value("search.pool_fallbacks") or 0,
        }

    summary["ledger"] = inj.by_kind()
    summary["totals"] = {
        "injected": inj.n_injected,
        "recovered": inj.n_recovered,
        "unrecovered": inj.n_unrecovered,
        "all_handled": inj.all_handled,
    }
    return summary, inj


def _render(summary: dict[str, Any], inj: Injection) -> str:
    lines = [
        f"chaos campaign — seed {summary['seed']}, grid {summary['grid']}",
        "",
        "fault ledger",
    ]
    lines += ["  " + line for line in inj.summary_lines()]
    lines += ["", "oracle (chaos vs fault-free golden run)"]
    for name, row in summary["oracle"].items():
        status = "ok" if row.get("ok") else "FAIL"
        detail = ", ".join(
            f"{k}={v}" for k, v in row.items() if k != "ok"
        )
        lines.append(f"  {name:<18} {status}   {detail}")
    lines += ["", "cost of resilience"]
    for name, row in summary["cost"].items():
        detail = ", ".join(f"{k}={v}" for k, v in row.items())
        lines.append(f"  {name:<18} {detail}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.report",
        description="run a seeded chaos campaign and summarize "
        "injected-vs-recovered faults and the cost of resilience",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--pe-fail", type=float, default=0.2)
    parser.add_argument("--link-down", type=float, default=0.15)
    parser.add_argument("--bitflip", type=float, default=0.1)
    parser.add_argument("--worker-crash", type=float, default=0.3)
    parser.add_argument("--worker-hang", type=float, default=0.0)
    parser.add_argument("--worker-poison", type=float, default=0.2)
    parser.add_argument("--executor-fail", type=float, default=1.0)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--timeout-s", type=float, default=20.0)
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="also write the summary document as JSON")
    parser.add_argument("--require-recovered", action="store_true",
                        help="exit 1 unless at least one fault recovered")
    parser.add_argument("--fail-on-unrecovered", action="store_true",
                        help="exit 1 if any injected fault went unrecovered")
    args = parser.parse_args(argv)

    spec = FaultSpec(
        pe_fail=args.pe_fail,
        link_down=args.link_down,
        bitflip=args.bitflip,
        worker_crash=args.worker_crash,
        worker_hang=args.worker_hang,
        worker_poison=args.worker_poison,
        executor_fail=args.executor_fail,
    )
    summary, inj = run_campaign(
        args.seed, spec, n_workers=args.workers, timeout_s=args.timeout_s
    )
    print(_render(summary, inj))
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(summary, indent=2, default=str) + "\n")
        print(f"\nwrote {args.json}")

    oracle_ok = all(row.get("ok") for row in summary["oracle"].values())
    if not oracle_ok:
        print("\nFAIL: a recovery claimed success but diverged from the "
              "fault-free oracle", file=sys.stderr)
        return 2
    if not summary["totals"]["all_handled"]:
        print("\nFAIL: some injected faults were neither recovered nor "
              "surfaced", file=sys.stderr)
        return 2
    if args.require_recovered and summary["totals"]["recovered"] == 0:
        print("\nFAIL: --require-recovered, but no fault recovered "
              "(raise the probabilities or change the seed)", file=sys.stderr)
        return 1
    if args.fail_on_unrecovered and summary["totals"]["unrecovered"] > 0:
        print("\nFAIL: --fail-on-unrecovered, but "
              f"{summary['totals']['unrecovered']} faults went unrecovered",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    sys.exit(main())
