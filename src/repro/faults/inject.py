"""The active-injection switch and the fault ledger.

Mirrors the :mod:`repro.obs` active-session pattern: a module-level slot
holding the current :class:`Injection` (a :class:`~repro.faults.plan.
FaultPlan` plus a ledger of what actually happened).  Instrumented layers
(grid machine, NoC, scheduler, search pool) call :func:`active` once per
operation; when no injection is open the hook is a single predictable
branch and the simulators behave exactly as before — chaos is strictly
opt-in.

Every fault site that fires is recorded **twice**: once when injected and
once when its recovery resolves (``recovered`` or ``unrecovered``), so
the ledger can always answer "did every injected fault get handled?".
When an observability session is also open, each record additionally
ticks a ``fault.injected`` / ``fault.recovered`` / ``fault.unrecovered``
counter labeled by fault kind, and each recovery observes the elapsed
time since its (oldest outstanding) injection into a
``fault.recovery_ms{kind=...}`` histogram — so chaos campaigns report
per-injection recovery latency percentiles, not just counts.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass
from typing import Iterator

from repro.faults.plan import FaultPlan
from repro.obs import active as _obs_active

__all__ = ["FaultRecord", "Injection", "injection", "active"]

#: Goodness direction per ledger action, for the obs diff tool.
_BETTER = {"injected": "lower", "recovered": "higher", "unrecovered": "lower"}


@dataclass(frozen=True)
class FaultRecord:
    """One ledger entry: what happened to one fault site."""

    action: str  # "injected" | "recovered" | "unrecovered"
    kind: str  # "pe_fail" | "link_down" | "bitflip" | "worker_*" | "executor"
    target: str = ""

    def __str__(self) -> str:
        t = f" {self.target}" if self.target else ""
        return f"{self.action:<11} {self.kind}{t}"


class Injection:
    """An open fault-injection scope: the plan plus the event ledger."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.records: list[FaultRecord] = []
        # per-kind FIFO of injection timestamps: resolution pops the
        # oldest outstanding injection of its kind, which is the right
        # pairing because targets are free-form strings that differ
        # between the inject and resolve sides
        self._pending_ns: dict[str, list[int]] = {}

    # ------------------------------------------------------------------ #
    # recording

    def _note(self, action: str, kind: str, target: str) -> None:
        self.records.append(FaultRecord(action, kind, target))
        now = time.perf_counter_ns()
        sess = _obs_active()
        if action == "injected":
            self._pending_ns.setdefault(kind, []).append(now)
        else:
            queue = self._pending_ns.get(kind)
            injected_ns = queue.pop(0) if queue else None
            if sess is not None and action == "recovered" and injected_ns is not None:
                sess.metrics.histogram("fault.recovery_ms", kind=kind).observe(
                    (now - injected_ns) / 1e6
                )
        if sess is not None:
            sess.metrics.counter(
                f"fault.{action}", better=_BETTER[action], kind=kind
            ).inc()

    def injected(self, kind: str, target: str = "") -> None:
        self._note("injected", kind, target)

    def recovered(self, kind: str, target: str = "") -> None:
        self._note("recovered", kind, target)

    def unrecovered(self, kind: str, target: str = "") -> None:
        self._note("unrecovered", kind, target)

    # ------------------------------------------------------------------ #
    # interrogation

    def count(self, action: str) -> int:
        return sum(1 for r in self.records if r.action == action)

    @property
    def n_injected(self) -> int:
        return self.count("injected")

    @property
    def n_recovered(self) -> int:
        return self.count("recovered")

    @property
    def n_unrecovered(self) -> int:
        return self.count("unrecovered")

    @property
    def all_handled(self) -> bool:
        """True when every injected fault was resolved one way or the other.

        Duplicate resolutions never occur (each injection site resolves
        once), so handled-ness is a simple count comparison.
        """
        return self.n_recovered + self.n_unrecovered >= self.n_injected

    def by_kind(self) -> dict[str, dict[str, int]]:
        """``{kind: {injected: n, recovered: n, unrecovered: n}}``."""
        out: dict[str, dict[str, int]] = {}
        for r in self.records:
            row = out.setdefault(
                r.kind, {"injected": 0, "recovered": 0, "unrecovered": 0}
            )
            row[r.action] += 1
        return out

    def summary_lines(self) -> list[str]:
        lines = [f"{'kind':<16} {'injected':>8} {'recovered':>9} {'unrecovered':>11}"]
        for kind in sorted(self.by_kind()):
            row = self.by_kind()[kind]
            lines.append(
                f"{kind:<16} {row['injected']:>8} {row['recovered']:>9} "
                f"{row['unrecovered']:>11}"
            )
        lines.append(
            f"{'total':<16} {self.n_injected:>8} {self.n_recovered:>9} "
            f"{self.n_unrecovered:>11}"
        )
        return lines


# ---------------------------------------------------------------------- #
# the active-injection slot (nests like obs sessions)

_ACTIVE: Injection | None = None


def active() -> Injection | None:
    """The currently open injection scope, or None when chaos is off."""
    return _ACTIVE


@contextlib.contextmanager
def injection(plan: FaultPlan) -> Iterator[Injection]:
    """Open a fault-injection scope; instrumented layers consult it.

    Scopes nest: the previous one is restored on exit.  The yielded
    :class:`Injection` carries the ledger for post-run interrogation.
    """
    global _ACTIVE
    inj = Injection(plan)
    prev = _ACTIVE
    _ACTIVE = inj
    try:
        yield inj
    finally:
        _ACTIVE = prev
