"""repro — executable reproduction of the SPAA'21 panel paper
"Architecture-Friendly Algorithms versus Algorithm-Friendly Architectures"
(Blelloch, Dally, Martonosi, Vishkin, Yelick).

The paper is a position paper: its "system" is a set of computational cost
models and its "evaluation" is a set of quantitative claims.  This package
makes all of it executable:

- :mod:`repro.api` — **the stable public facade**: ``compile`` /
  ``evaluate`` / ``search`` / ``simulate`` (+ ``score``) with typed,
  JSON-able request dataclasses — the one entry point the serving layer,
  the benchmarks, and the examples share;
- :mod:`repro.serve` — the batched async evaluation service: JSON
  protocol, per-tick batcher with backpressure, and a shard pool of
  persistent warm-cache workers fronted by an HTTP server;
- :mod:`repro.core` — Dally's Function-and-Mapping model (dataflow graphs,
  space-time mappings, legality, cost, idioms, composition, search,
  lowering, recomputation);
- :mod:`repro.models` — the classic cost models the panel argues over
  (RAM, PRAM, work-depth, ideal cache, asymmetric read/write);
- :mod:`repro.machines` — simulated substrates (technology parameters,
  grid machine, NoC, conventional multicore, XMT PRAM-on-chip, caches);
- :mod:`repro.runtime` — fork-join DSL and schedulers (greedy, work
  stealing, centralized queue);
- :mod:`repro.algorithms` — the algorithms the panelists name (scan,
  reduce, FFT, edit distance, BFS, sorting, matmul, stencils,
  connectivity), each in the formulations the panel contrasts;
- :mod:`repro.analysis` — the paper's claims as data, Brent-bound
  checking, Pareto frontiers, and table rendering;
- :mod:`repro.obs` — the unified telemetry layer: structured metrics,
  span tracing with wall- and model-time, Chrome-trace export, and the
  ``python -m repro.obs.report`` summarize/diff CLI;
- :mod:`repro.faults` — deterministic fault injection and the chaos
  campaign CLI.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every claim (C1-C20).

Compatibility
-------------
The convenience re-exports ``check_legality`` / ``evaluate_cost`` /
``default_mapping`` / ``serial_mapping`` at this top level are
**deprecated shims**: they keep working, but emit a
:class:`DeprecationWarning` pointing at :mod:`repro.api` (or the
canonical defining module, which never warns).
"""

from __future__ import annotations

import warnings

from repro.machines.technology import Technology, TECH_5NM
from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec, Mapping
from repro.machines.grid import GridMachine
from repro import api, obs

__version__ = "1.3.0"

__all__ = [
    # the stable facade
    "api",
    "obs",
    # core value types (stable)
    "Technology",
    "TECH_5NM",
    "DataflowGraph",
    "GridSpec",
    "Mapping",
    "GridMachine",
    "__version__",
]

#: Deprecated top-level re-exports -> (canonical "module:attr", facade hint).
_DEPRECATED_SHIMS = {
    "check_legality": (
        "repro.core.legality:check_legality",
        "repro.api.evaluate(..., check=True)",
    ),
    "evaluate_cost": (
        "repro.core.cost:evaluate_cost",
        "repro.api.evaluate(...)",
    ),
    "default_mapping": (
        "repro.core.default_mapper:default_mapping",
        'repro.api.evaluate(..., mapper="default")',
    ),
    "serial_mapping": (
        "repro.core.default_mapper:serial_mapping",
        'repro.api.evaluate(..., mapper="serial")',
    ),
}


def __getattr__(name: str):
    """Lazy deprecation shims for the pre-facade top-level entry points."""
    shim = _DEPRECATED_SHIMS.get(name)
    if shim is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    canonical, facade = shim
    mod_name, attr = canonical.split(":")
    warnings.warn(
        f"'repro.{name}' is deprecated: use {facade} (or import "
        f"{attr} from {mod_name}, which never warns)",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(mod_name), attr)


def __dir__() -> list[str]:
    return sorted(set(__all__) | set(_DEPRECATED_SHIMS))
