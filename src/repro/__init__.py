"""repro — executable reproduction of the SPAA'21 panel paper
"Architecture-Friendly Algorithms versus Algorithm-Friendly Architectures"
(Blelloch, Dally, Martonosi, Vishkin, Yelick).

The paper is a position paper: its "system" is a set of computational cost
models and its "evaluation" is a set of quantitative claims.  This package
makes all of it executable:

- :mod:`repro.core` — Dally's Function-and-Mapping model (dataflow graphs,
  space-time mappings, legality, cost, idioms, composition, search,
  lowering, recomputation);
- :mod:`repro.models` — the classic cost models the panel argues over
  (RAM, PRAM, work-depth, ideal cache, asymmetric read/write);
- :mod:`repro.machines` — simulated substrates (technology parameters,
  grid machine, NoC, conventional multicore, XMT PRAM-on-chip, caches);
- :mod:`repro.runtime` — fork-join DSL and schedulers (greedy, work
  stealing, centralized queue);
- :mod:`repro.algorithms` — the algorithms the panelists name (scan,
  reduce, FFT, edit distance, BFS, sorting, matmul, stencils,
  connectivity), each in the formulations the panel contrasts;
- :mod:`repro.analysis` — the paper's claims as data, Brent-bound
  checking, Pareto frontiers, and table rendering;
- :mod:`repro.obs` — the unified telemetry layer: structured metrics,
  span tracing with wall- and model-time, Chrome-trace export, and the
  ``python -m repro.obs.report`` summarize/diff CLI.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every claim (C1-C14).
"""

from repro.machines.technology import Technology, TECH_5NM
from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec, Mapping
from repro.core.legality import check_legality
from repro.core.cost import evaluate_cost
from repro.core.default_mapper import default_mapping, serial_mapping
from repro.machines.grid import GridMachine
from repro import obs

__version__ = "1.0.0"

__all__ = [
    "Technology",
    "TECH_5NM",
    "DataflowGraph",
    "GridSpec",
    "Mapping",
    "check_legality",
    "evaluate_cost",
    "default_mapping",
    "serial_mapping",
    "GridMachine",
    "obs",
    "__version__",
]
