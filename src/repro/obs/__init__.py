"""repro.obs — the unified telemetry layer.

The paper's thesis is that costs (communication, cache misses, scheduler
overhead) must be *explicit and measurable*.  The simulators in this
package compute those costs; this subsystem records them in machine-
readable form so runs are comparable across commits:

* :class:`~repro.obs.metrics.MetricsRegistry` — labeled counters / gauges
  / histograms (``cache.misses{level=L1}``, ``scheduler.steal_attempts``);
* :class:`~repro.obs.trace.Tracer` — nested spans with both wall-time and
  model-time (simulated cycles) attribution;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` / Perfetto) and a flat metrics dump;
* ``python -m repro.obs.report`` — summarize one dump, or diff two and
  fail on regressions beyond a tolerance.

Usage — observability is **opt-in and near-zero cost when off**::

    from repro import obs

    with obs.session(label="my-run", out_dir="obs_out") as sess:
        ...  # any instrumented simulator call records into sess
    # artifacts written on exit: obs_out/my-run.trace.json + .metrics.json

Instrumented modules (scheduler, cachesim, cost, search, xmt, noc, grid)
call :func:`active` once per operation; when no session is open it returns
``None`` and the instrumentation is a single predictable branch — the
simulators never pay per-step overhead for telemetry nobody asked for.
"""

from __future__ import annotations

import contextlib
import pathlib
from typing import Any, Iterator

from repro.obs.distributed import (
    ChildTelemetry,
    MetricsSnapshot,
    SnapshotCursor,
    SpanBatch,
    TelemetryAggregator,
)
from repro.obs.export import chrome_trace, metrics_dump, write_json
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer

__all__ = [
    "ChildTelemetry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SnapshotCursor",
    "Span",
    "SpanBatch",
    "TelemetryAggregator",
    "Tracer",
    "Session",
    "session",
    "active",
    "activate",
    "enabled",
]


class Session:
    """One observability session: a registry + a tracer + export plumbing."""

    def __init__(self, label: str = "session", out_dir: str | pathlib.Path | None = None) -> None:
        self.label = label
        self.out_dir = pathlib.Path(out_dir) if out_dir is not None else None
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()

    # -- convenience pass-throughs ------------------------------------- #

    def span(self, name: str, cat: str = "repro", cycles: int | None = None, **args: Any) -> Span:
        return self.tracer.span(name, cat=cat, cycles=cycles, **args)

    def counter(self, name: str, better: str = "lower", **labels: Any) -> Counter:
        return self.metrics.counter(name, better=better, **labels)

    def gauge(self, name: str, better: str = "higher", **labels: Any) -> Gauge:
        return self.metrics.gauge(name, better=better, **labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self.metrics.histogram(name, **labels)

    # -- export --------------------------------------------------------- #

    def chrome_trace(self) -> dict[str, Any]:
        return chrome_trace(self.tracer, label=self.label)

    def metrics_dump(self, extra: dict[str, Any] | None = None) -> dict[str, Any]:
        return metrics_dump(self.metrics, label=self.label, extra=extra)

    def write(self, out_dir: str | pathlib.Path | None = None) -> dict[str, pathlib.Path]:
        """Write both artifacts; returns {"trace": path, "metrics": path}."""
        base = pathlib.Path(out_dir) if out_dir is not None else self.out_dir
        if base is None:
            raise ValueError("no out_dir given to write() or session()")
        return {
            "trace": write_json(base / f"{self.label}.trace.json", self.chrome_trace()),
            "metrics": write_json(
                base / f"{self.label}.metrics.json", self.metrics_dump()
            ),
        }


# ---------------------------------------------------------------------- #
# the active-session switch.  A module-level slot, read once per
# instrumented operation; sessions nest (the previous one is restored).

_ACTIVE: Session | None = None


def active() -> Session | None:
    """The currently open session, or None when observability is off."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


def activate(sess: Session | None) -> Session | None:
    """Install ``sess`` as the active session; returns the previous one.

    The non-context-manager install for long-lived owners (the serve
    front end installs its own session for the server's lifetime so
    ``/metrics`` works without the caller opening one).  The caller is
    responsible for restoring the returned previous session — typically::

        prev = obs.activate(my_session)
        try: ...
        finally: obs.activate(prev)
    """
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = sess
    return prev


@contextlib.contextmanager
def session(
    label: str = "session",
    out_dir: str | pathlib.Path | None = None,
    write_on_exit: bool = True,
) -> Iterator[Session]:
    """Open an observability session; instrumented simulators record into it.

    If ``out_dir`` is given and ``write_on_exit`` is true, the Chrome trace
    and the metrics dump are written on (clean or exceptional) exit.
    """
    global _ACTIVE
    sess = Session(label=label, out_dir=out_dir)
    prev = _ACTIVE
    _ACTIVE = sess
    try:
        yield sess
    finally:
        _ACTIVE = prev
        if sess.out_dir is not None and write_on_exit:
            sess.write()
