"""Cross-process telemetry: snapshots children ship, merging parents do.

Since the serving stack went multi-process (shard workers, search pools,
chaos campaigns), counters incremented inside a child process died with
that process.  This module closes the gap with three pieces, all
zero-dependency and JSON-able so payloads ride any transport the repo
already uses (pickled worker queues, HTTP bodies, files):

:class:`MetricsSnapshot`
    A serializable capture of a child's :class:`~repro.obs.metrics.
    MetricsRegistry`.  With a :class:`SnapshotCursor` it carries only
    *deltas* since the previous capture — counters ship
    cumulative-minus-published, histograms ship per-bucket count deltas
    plus cumulative min/max (idempotent under re-merge), gauges are
    last-write-wins — so a child can flush on every response without
    double-counting.
:class:`SpanBatch`
    The spans a child completed since the last capture, serialized via
    ``Span.as_dict``.  ``start_ns`` values are absolute
    ``perf_counter_ns`` readings; on Linux that clock is CLOCK_MONOTONIC
    (system-wide), so the parent can place child spans on its own
    timeline without clock negotiation.
:class:`TelemetryAggregator`
    Parent-side sink: merges snapshots into the parent registry with a
    ``process`` label added to every series, and adopts span batches via
    :meth:`~repro.obs.trace.Tracer.record_foreign` so the session's
    Chrome trace renders each child as its own process lane.

:class:`ChildTelemetry` bundles a session + cursor into the one-call
``flush()`` children use; :func:`telemetry_payload` / :meth:`
TelemetryAggregator.absorb` define the wire document both ends agree on.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import Histogram, MetricsRegistry, parse_series_key
from repro.obs.trace import Tracer

__all__ = [
    "ChildTelemetry",
    "MetricsSnapshot",
    "SnapshotCursor",
    "SpanBatch",
    "TelemetryAggregator",
]


class SnapshotCursor:
    """What one process has already published, so captures ship deltas.

    Tracks per-series published counter values, published histogram
    states, and the index of the last shipped span.  One cursor per
    (registry, consumer) pair; feeding it to :meth:`MetricsSnapshot.
    capture` / :meth:`SpanBatch.capture` advances it.
    """

    __slots__ = ("counters", "hists", "span_index")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.hists: dict[str, dict[str, Any]] = {}
        self.span_index: int = 0


class MetricsSnapshot:
    """A serializable (delta) capture of one registry.

    ``counters`` maps flat series keys to deltas (or cumulative totals
    when captured without a cursor), ``gauges`` to current values,
    ``histograms`` to mergeable :meth:`~repro.obs.metrics.Histogram.
    state` documents, and ``meta`` carries per-name kind/direction so
    the merging side registers series with the right goodness direction.
    """

    __slots__ = ("process", "counters", "gauges", "histograms", "meta")

    def __init__(
        self,
        process: str | None = None,
        counters: dict[str, float] | None = None,
        gauges: dict[str, float] | None = None,
        histograms: dict[str, dict[str, Any]] | None = None,
        meta: dict[str, dict[str, str]] | None = None,
    ) -> None:
        self.process = process
        self.counters = counters or {}
        self.gauges = gauges or {}
        self.histograms = histograms or {}
        self.meta = meta or {}

    @classmethod
    def capture(
        cls,
        registry: MetricsRegistry,
        cursor: SnapshotCursor | None = None,
        process: str | None = None,
    ) -> "MetricsSnapshot":
        """Capture the registry; with a cursor, only what changed since."""
        snap = cls(process=process)
        for s in registry.series():
            key = _series_key_of(s)
            if isinstance(s, Histogram):
                state = s.state()
                if cursor is not None:
                    published = cursor.hists.get(key)
                    if published is not None:
                        state = _hist_delta(state, published)
                    cursor.hists[key] = s.state()
                if state["count"]:
                    snap.histograms[key] = state
            elif type(s).__name__ == "Gauge":
                snap.gauges[key] = s.value
            else:  # Counter
                delta = s.value
                if cursor is not None:
                    delta -= cursor.counters.get(key, 0.0)
                    cursor.counters[key] = s.value
                if delta:
                    snap.counters[key] = delta
        full = registry.snapshot()["meta"]
        names = {parse_series_key(k)[0] for k in snap.counters}
        names |= {parse_series_key(k)[0] for k in snap.gauges}
        names |= {parse_series_key(k)[0] for k in snap.histograms}
        snap.meta = {n: full[n] for n in sorted(names) if n in full}
        return snap

    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def to_jsonable(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
            "meta": self.meta,
        }
        if self.process is not None:
            doc["process"] = self.process
        return doc

    @classmethod
    def from_jsonable(cls, doc: dict[str, Any]) -> "MetricsSnapshot":
        return cls(
            process=doc.get("process"),
            counters=dict(doc.get("counters", {})),
            gauges=dict(doc.get("gauges", {})),
            histograms=dict(doc.get("histograms", {})),
            meta=dict(doc.get("meta", {})),
        )


def _series_key_of(s: Any) -> str:
    from repro.obs.metrics import series_key

    return series_key(s.name, s.labels)


def _hist_delta(cur: dict[str, Any], published: dict[str, Any]) -> dict[str, Any]:
    """Bucket/count/sum deltas; min/max stay cumulative (merge is idempotent)."""
    pub_buckets = published.get("buckets", {})
    buckets = {
        b: n - pub_buckets.get(b, 0)
        for b, n in cur.get("buckets", {}).items()
        if n - pub_buckets.get(b, 0)
    }
    return {
        "count": cur["count"] - published["count"],
        "sum": cur["sum"] - published["sum"],
        "min": cur.get("min"),
        "max": cur.get("max"),
        "buckets": buckets,
    }


class SpanBatch:
    """Spans one process completed since the cursor's last capture."""

    __slots__ = ("process", "spans")

    def __init__(self, process: str, spans: list[dict[str, Any]]) -> None:
        self.process = process
        self.spans = spans

    @classmethod
    def capture(
        cls,
        tracer: Tracer,
        cursor: SnapshotCursor | None = None,
        process: str = "child",
    ) -> "SpanBatch":
        start = cursor.span_index if cursor is not None else 0
        spans = [s.as_dict() for s in tracer.spans[start:]]
        if cursor is not None:
            cursor.span_index = start + len(spans)
        return cls(process=process, spans=spans)

    def empty(self) -> bool:
        return not self.spans

    def to_jsonable(self) -> list[dict[str, Any]]:
        return self.spans


class ChildTelemetry:
    """Child-process side: one session + one cursor + one-call flush.

    ``flush()`` returns the wire payload (or ``None`` when nothing
    happened since the last flush) that :meth:`TelemetryAggregator.
    absorb` consumes on the parent side.  Payloads are plain dicts of
    JSON-able values so they pickle over worker queues and serialize
    over HTTP alike.
    """

    __slots__ = ("session", "process", "cursor")

    def __init__(self, session: Any, process: str) -> None:
        self.session = session
        self.process = process
        self.cursor = SnapshotCursor()

    def flush(self) -> dict[str, Any] | None:
        snap = MetricsSnapshot.capture(
            self.session.metrics, self.cursor, process=self.process
        )
        batch = SpanBatch.capture(
            self.session.tracer, self.cursor, process=self.process
        )
        if snap.empty() and batch.empty():
            return None
        payload: dict[str, Any] = {"process": self.process}
        if not snap.empty():
            payload["metrics"] = snap.to_jsonable()
        if not batch.empty():
            payload["spans"] = batch.to_jsonable()
        return payload


class TelemetryAggregator:
    """Parent-side sink merging child payloads into one session.

    Counters add their deltas, gauges last-write-win, histograms merge
    bucket states exactly; every merged series gains a ``process`` label
    so per-process breakdowns survive aggregation.  Spans are adopted
    onto the parent tracer's ``foreign`` map, which the Chrome exporter
    renders as separate process lanes in the *same* trace file.
    """

    __slots__ = ("session",)

    def __init__(self, session: Any) -> None:
        self.session = session

    def absorb(self, payload: dict[str, Any] | None) -> None:
        """Consume one :meth:`ChildTelemetry.flush` payload (None is a no-op)."""
        if not payload:
            return
        process = payload.get("process") or "child"
        if "metrics" in payload:
            self.merge_metrics(MetricsSnapshot.from_jsonable(payload["metrics"]))
        if "spans" in payload:
            self.session.tracer.record_foreign(process, list(payload["spans"]))

    def merge_metrics(self, snap: MetricsSnapshot) -> None:
        reg: MetricsRegistry = self.session.metrics
        for key, delta in snap.counters.items():
            name, labels = parse_series_key(key)
            labels = self._label(labels, snap.process)
            better = snap.meta.get(name, {}).get("better", "lower")
            if delta > 0:
                reg.counter(name, better=better, **labels).add(delta)
            else:
                reg.counter(name, better=better, **labels)  # register at 0
        for key, value in snap.gauges.items():
            name, labels = parse_series_key(key)
            labels = self._label(labels, snap.process)
            better = snap.meta.get(name, {}).get("better", "higher")
            reg.gauge(name, better=better, **labels).set(value)
        for key, state in snap.histograms.items():
            name, labels = parse_series_key(key)
            labels = self._label(labels, snap.process)
            reg.histogram(name, **labels).merge_state(state)

    @staticmethod
    def _label(labels: dict[str, str], process: str | None) -> dict[str, str]:
        if process is not None and "process" not in labels:
            labels = {**labels, "process": process}
        return labels
