"""Structured metrics: named counters, gauges, and histograms with labels.

The panel's running theme is that costs must be *explicit and measurable*;
this module is the measurement half.  A :class:`MetricsRegistry` holds
labeled series of three kinds:

``Counter``
    Monotonically accumulating totals (cache misses, steal attempts,
    cycles).  Each counter declares a *goodness direction* (``better=
    "lower"`` by default) so the diff tool in :mod:`repro.obs.report` can
    tell a regression from an improvement without guessing from names.
``Gauge``
    Last-write-wins instantaneous values (utilization, Pareto-front size).
``Histogram``
    Streaming count/sum/min/max summaries of a distribution (queue depth,
    per-candidate figure of merit) without storing samples.

Zero dependencies, no I/O: export lives in :mod:`repro.obs.export`.
Series are cached by ``(name, labels)`` so hot paths pay one dict lookup
per touch; instrumented code should additionally guard on
:func:`repro.obs.active` so disabled runs pay nothing at all.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "series_key"]


def series_key(name: str, labels: dict[str, Any]) -> str:
    """Canonical flat key: ``name`` or ``name{k1=v1,k2=v2}`` (keys sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total for one labeled series."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def add(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (add {n})")
        self.value += n

    def inc(self) -> None:
        self.value += 1


class Gauge:
    """An instantaneous last-write-wins value for one labeled series."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)


class Histogram:
    """A streaming summary (count/sum/min/max) of observed values."""

    __slots__ = ("name", "labels", "count", "sum", "min", "max")

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.count: int = 0
        self.sum: float = 0.0
        self.min: float = float("inf")
        self.max: float = float("-inf")

    def observe(self, v: float) -> None:
        v = float(v)
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """All metric series of one observability session.

    ``counter`` / ``gauge`` / ``histogram`` create-or-return the series for
    ``(name, labels)``; a name is bound to one kind for the registry's
    lifetime (mixing kinds under one name raises ``TypeError``, which
    catches typo'd instrumentation early).
    """

    def __init__(self) -> None:
        self._series: dict[str, Counter | Gauge | Histogram] = {}
        self._meta: dict[str, dict[str, str]] = {}

    # ------------------------------------------------------------------ #

    def _get(
        self, kind: str, name: str, better: str, help_: str, labels: dict[str, Any]
    ) -> Any:
        key = series_key(name, labels)
        s = self._series.get(key)
        if s is not None:
            if not isinstance(s, _KINDS[kind]):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(s).__name__.lower()}, requested as {kind}"
                )
            return s
        meta = self._meta.setdefault(
            name, {"kind": kind, "better": better, "help": help_}
        )
        if meta["kind"] != kind:
            raise TypeError(
                f"metric {name!r} already registered as {meta['kind']}, "
                f"requested as {kind}"
            )
        s = _KINDS[kind](name, dict(labels))
        self._series[key] = s
        return s

    def counter(
        self, name: str, better: str = "lower", help: str = "", **labels: Any
    ) -> Counter:
        if better not in ("lower", "higher"):
            raise ValueError(f"better must be 'lower' or 'higher', got {better!r}")
        return self._get("counter", name, better, help, labels)

    def gauge(
        self, name: str, better: str = "higher", help: str = "", **labels: Any
    ) -> Gauge:
        if better not in ("lower", "higher"):
            raise ValueError(f"better must be 'lower' or 'higher', got {better!r}")
        return self._get("gauge", name, better, help, labels)

    def histogram(self, name: str, help: str = "", **labels: Any) -> Histogram:
        return self._get("histogram", name, "lower", help, labels)

    # ------------------------------------------------------------------ #

    def series(self) -> list[Counter | Gauge | Histogram]:
        """All series, in registration order."""
        return list(self._series.values())

    def get_value(self, name: str, **labels: Any) -> float | None:
        """Value of one series (histograms: the mean), or None if absent."""
        s = self._series.get(series_key(name, labels))
        if s is None:
            return None
        return s.mean if isinstance(s, Histogram) else s.value

    def snapshot(self) -> dict[str, Any]:
        """Flat, JSON-able dump of every series (see repro-obs-metrics/1)."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, float]] = {}
        for key, s in self._series.items():
            if isinstance(s, Counter):
                counters[key] = s.value
            elif isinstance(s, Gauge):
                gauges[key] = s.value
            else:
                histograms[key] = s.summary()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "meta": {n: dict(m) for n, m in sorted(self._meta.items())},
        }
