"""Structured metrics: named counters, gauges, and histograms with labels.

The panel's running theme is that costs must be *explicit and measurable*;
this module is the measurement half.  A :class:`MetricsRegistry` holds
labeled series of three kinds:

``Counter``
    Monotonically accumulating totals (cache misses, steal attempts,
    cycles).  Each counter declares a *goodness direction* (``better=
    "lower"`` by default) so the diff tool in :mod:`repro.obs.report` can
    tell a regression from an improvement without guessing from names.
``Gauge``
    Last-write-wins instantaneous values (utilization, Pareto-front size).
``Histogram``
    Streaming count/sum/min/max summaries of a distribution (queue depth,
    per-candidate figure of merit) without storing samples, plus fixed
    log2-spaced bucket counts, so percentiles (p50/p95/p99) are
    computable and two histograms — possibly from different processes —
    merge exactly (:meth:`Histogram.merge_state`).

Zero dependencies, no I/O: export lives in :mod:`repro.obs.export`.
Series are cached by ``(name, labels)`` so hot paths pay one dict lookup
per touch; instrumented code should additionally guard on
:func:`repro.obs.active` so disabled runs pay nothing at all.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "series_key",
    "parse_series_key",
]


def series_key(name: str, labels: dict[str, Any]) -> str:
    """Canonical flat key: ``name`` or ``name{k1=v1,k2=v2}`` (keys sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`series_key`: ``name{k=v,...}`` -> (name, labels).

    Label values come back as strings (the flat key stringifies them);
    that is lossless for the merge use case — re-serializing with
    :func:`series_key` reproduces the identical key.
    """
    if "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: dict[str, str] = {}
    for part in inner.rstrip("}").split(","):
        if not part:
            continue
        k, _, v = part.partition("=")
        labels[k] = v
    return name, labels


class Counter:
    """A monotonically increasing total for one labeled series."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def add(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (add {n})")
        self.value += n

    def inc(self) -> None:
        self.value += 1


class Gauge:
    """An instantaneous last-write-wins value for one labeled series."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)


#: Bucket index bounds for the log2 histogram buckets: values outside
#: [2**_BUCKET_LO, 2**_BUCKET_HI] clamp into the edge buckets.
_BUCKET_LO = -40
_BUCKET_HI = 89


def _bucket_of(v: float) -> int:
    """Log2 bucket index of a value: the bucket holds values <= 2**index.

    Non-positive values land in the dedicated floor bucket (below
    ``_BUCKET_LO``), so the scheme covers queue depths of zero as well as
    sub-nanosecond and multi-terasample magnitudes.
    """
    if v <= 0 or v != v:  # non-positive and NaN both pin to the floor
        return _BUCKET_LO - 1
    return min(max(math.ceil(math.log2(v)), _BUCKET_LO), _BUCKET_HI)


class Histogram:
    """A streaming summary (count/sum/min/max + log2 buckets) of a
    distribution.  Buckets make percentiles computable without storing
    samples and make two histograms mergeable exactly — the property the
    cross-process aggregation in :mod:`repro.obs.distributed` relies on.
    """

    __slots__ = ("name", "labels", "count", "sum", "min", "max", "buckets")

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.count: int = 0
        self.sum: float = 0.0
        self.min: float = float("inf")
        self.max: float = float("-inf")
        self.buckets: dict[int, int] = {}

    def observe(self, v: float) -> None:
        v = float(v)
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        b = _bucket_of(v)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (q in [0, 1]) from the log2 buckets.

        Returns the upper bound of the bucket where the cumulative count
        crosses ``q * count``, clamped into [min, max] — exact to within
        one power of two, which is plenty for latency reporting.
        """
        if not self.count:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile wants q in [0, 1], got {q}")
        threshold = q * self.count
        seen = 0
        for b in sorted(self.buckets):
            seen += self.buckets[b]
            if seen >= threshold:
                upper = 0.0 if b < _BUCKET_LO else 2.0 ** b
                return min(max(upper, self.min), self.max)
        return self.max  # pragma: no cover - cumulative always reaches count

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    # -- cross-process merge state -------------------------------------- #

    def state(self) -> dict[str, Any]:
        """The JSON-able mergeable state (what snapshots ship)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(b): n for b, n in self.buckets.items()},
        }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Count/sum/buckets add; min/max combine — so merging a sequence of
        cumulative snapshots of the same source is idempotent for min/max
        and additive for the delta-shipped counts.
        """
        self.count += int(state["count"])
        self.sum += float(state["sum"])
        if state.get("min") is not None:
            self.min = min(self.min, float(state["min"]))
        if state.get("max") is not None:
            self.max = max(self.max, float(state["max"]))
        for b, n in state.get("buckets", {}).items():
            b = int(b)
            self.buckets[b] = self.buckets.get(b, 0) + int(n)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """All metric series of one observability session.

    ``counter`` / ``gauge`` / ``histogram`` create-or-return the series for
    ``(name, labels)``; a name is bound to one kind for the registry's
    lifetime (mixing kinds under one name raises ``TypeError``, which
    catches typo'd instrumentation early).
    """

    def __init__(self) -> None:
        self._series: dict[str, Counter | Gauge | Histogram] = {}
        self._meta: dict[str, dict[str, str]] = {}

    # ------------------------------------------------------------------ #

    def _get(
        self, kind: str, name: str, better: str, help_: str, labels: dict[str, Any]
    ) -> Any:
        key = series_key(name, labels)
        s = self._series.get(key)
        if s is not None:
            if not isinstance(s, _KINDS[kind]):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(s).__name__.lower()}, requested as {kind}"
                )
            return s
        meta = self._meta.setdefault(
            name, {"kind": kind, "better": better, "help": help_}
        )
        if meta["kind"] != kind:
            raise TypeError(
                f"metric {name!r} already registered as {meta['kind']}, "
                f"requested as {kind}"
            )
        s = _KINDS[kind](name, dict(labels))
        self._series[key] = s
        return s

    def counter(
        self, name: str, better: str = "lower", help: str = "", **labels: Any
    ) -> Counter:
        if better not in ("lower", "higher"):
            raise ValueError(f"better must be 'lower' or 'higher', got {better!r}")
        return self._get("counter", name, better, help, labels)

    def gauge(
        self, name: str, better: str = "higher", help: str = "", **labels: Any
    ) -> Gauge:
        if better not in ("lower", "higher"):
            raise ValueError(f"better must be 'lower' or 'higher', got {better!r}")
        return self._get("gauge", name, better, help, labels)

    def histogram(self, name: str, help: str = "", **labels: Any) -> Histogram:
        return self._get("histogram", name, "lower", help, labels)

    # ------------------------------------------------------------------ #

    def series(self) -> list[Counter | Gauge | Histogram]:
        """All series, in registration order."""
        return list(self._series.values())

    def get_value(self, name: str, **labels: Any) -> float | None:
        """Value of one series (histograms: the mean), or None if absent."""
        s = self._series.get(series_key(name, labels))
        if s is None:
            return None
        return s.mean if isinstance(s, Histogram) else s.value

    def snapshot(self) -> dict[str, Any]:
        """Flat, JSON-able dump of every series (see repro-obs-metrics/1)."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, float]] = {}
        for key, s in self._series.items():
            if isinstance(s, Counter):
                counters[key] = s.value
            elif isinstance(s, Gauge):
                gauges[key] = s.value
            else:
                histograms[key] = s.summary()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "meta": {n: dict(m) for n, m in sorted(self._meta.items())},
        }
