"""Exporters: Chrome ``trace_event`` JSON and the flat metrics dump.

Two machine-readable artifacts per session:

* ``<label>.trace.json`` — the Chrome Trace Event Format (the ``{
  "traceEvents": [...] }`` object form), loadable in ``chrome://tracing``
  or https://ui.perfetto.dev.  Spans become complete events (``"ph": "X"``)
  with microsecond ``ts``/``dur``; model time (cycles) rides in ``args``.
* ``<label>.metrics.json`` — schema ``repro-obs-metrics/1``: flat
  ``counters`` / ``gauges`` / ``histograms`` maps keyed by
  ``name{label=value}`` plus per-name ``meta`` (kind, goodness direction).
  :mod:`repro.obs.report` summarizes and diffs these.

Both formats are validated by :func:`validate_chrome_trace` /
:func:`validate_metrics_dump`, which return a list of problems (empty
means valid) — used by the test suite and ``repro.obs.report --self-test``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "METRICS_SCHEMA",
    "chrome_trace",
    "metrics_dump",
    "validate_chrome_trace",
    "validate_metrics_dump",
    "write_json",
]

METRICS_SCHEMA = "repro-obs-metrics/1"


def chrome_trace(tracer: Tracer, label: str = "repro", pid: int = 1) -> dict[str, Any]:
    """Render a tracer's spans as a Chrome Trace Event Format document."""
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "args": {"name": f"repro:{label}"},
        }
    ]
    # stable small tids: chrome renders one lane per tid
    tid_map: dict[int, int] = {}

    def tid_of(raw: int) -> int:
        if raw not in tid_map:
            tid_map[raw] = len(tid_map) + 1
        return tid_map[raw]

    epoch = tracer.epoch_ns
    for s in sorted(tracer.spans, key=lambda s: s.start_ns):
        args = dict(s.args)
        if s.cycles is not None:
            args["cycles"] = s.cycles
        events.append(
            {
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "ts": (s.start_ns - epoch) / 1000.0,
                "dur": max(s.dur_ns, 1) / 1000.0,
                "pid": pid,
                "tid": tid_of(s.tid),
                "args": args,
            }
        )
    for ev in tracer.instants:
        events.append(
            {
                "name": ev["name"],
                "cat": ev["cat"],
                "ph": "i",
                "s": "t",
                "ts": (ev["ts_ns"] - epoch) / 1000.0,
                "pid": pid,
                "tid": tid_of(ev["tid"]),
                "args": ev["args"],
            }
        )
    # spans adopted from other processes: one Chrome pid lane per process.
    # Child start_ns values are absolute CLOCK_MONOTONIC readings, so they
    # align with the parent epoch; clamp the rare pre-epoch span to 0.
    for extra_pid, (process, spans) in enumerate(
        sorted(tracer.foreign.items()), start=pid + 1
    ):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": extra_pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": f"repro:{process}"},
            }
        )
        sub_tids: dict[Any, int] = {}
        for d in sorted(spans, key=lambda d: d.get("start_ns", 0)):
            raw_tid = d.get("tid", 0)
            if raw_tid not in sub_tids:
                sub_tids[raw_tid] = len(sub_tids) + 1
            args = dict(d.get("args", {}))
            if d.get("cycles") is not None:
                args["cycles"] = d["cycles"]
            events.append(
                {
                    "name": d["name"],
                    "cat": d.get("cat", "repro"),
                    "ph": "X",
                    "ts": max((d.get("start_ns", epoch) - epoch) / 1000.0, 0.0),
                    "dur": max(d.get("dur_ns", 0), 1) / 1000.0,
                    "pid": extra_pid,
                    "tid": sub_tids[raw_tid],
                    "args": args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def metrics_dump(
    registry: MetricsRegistry, label: str = "repro", extra: dict[str, Any] | None = None
) -> dict[str, Any]:
    """The flat metrics document for one session."""
    doc: dict[str, Any] = {"schema": METRICS_SCHEMA, "label": label}
    if extra:
        doc["extra"] = dict(extra)
    doc.update(registry.snapshot())
    return doc


# ---------------------------------------------------------------------- #
# validation


def validate_chrome_trace(doc: Any) -> list[str]:
    """Check the Trace Event Format invariants; return problems (empty = ok)."""
    problems: list[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document is not an object with a 'traceEvents' array"]
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return ["'traceEvents' is not a non-empty array"]
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for req in ("name", "ph", "pid", "tid", "ts"):
            if req not in ev:
                problems.append(f"{where} ({ev.get('name')!r}): missing {req!r}")
        ph = ev.get("ph")
        if ph not in ("X", "B", "E", "M", "i", "C"):
            problems.append(f"{where}: unknown phase {ph!r}")
        if ph == "X":
            if "dur" not in ev:
                problems.append(f"{where} ({ev.get('name')!r}): 'X' without dur")
            elif not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
                problems.append(f"{where}: bad dur {ev['dur']!r}")
        ts = ev.get("ts")
        if ts is not None and (not isinstance(ts, (int, float)) or ts < 0):
            problems.append(f"{where}: bad ts {ts!r}")
    return problems


def validate_metrics_dump(doc: Any) -> list[str]:
    """Check a metrics dump against schema repro-obs-metrics/1."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != METRICS_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, want {METRICS_SCHEMA!r}")
    for section in ("counters", "gauges", "histograms", "meta"):
        if not isinstance(doc.get(section), dict):
            problems.append(f"missing or non-object section {section!r}")
    if problems:
        return problems
    for key, v in {**doc["counters"], **doc["gauges"]}.items():
        if not isinstance(v, (int, float)):
            problems.append(f"{key}: non-numeric value {v!r}")
    for key, h in doc["histograms"].items():
        if not isinstance(h, dict) or "count" not in h or "sum" not in h:
            problems.append(f"{key}: malformed histogram summary")
    for name, meta in doc["meta"].items():
        if meta.get("kind") not in ("counter", "gauge", "histogram"):
            problems.append(f"meta {name}: bad kind {meta.get('kind')!r}")
        if meta.get("better") not in ("lower", "higher"):
            problems.append(f"meta {name}: bad direction {meta.get('better')!r}")
    return problems


def write_json(path: str | pathlib.Path, doc: dict[str, Any]) -> pathlib.Path:
    """Write a document as JSON, creating parent directories."""
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(doc, indent=1, sort_keys=False) + "\n")
    return p
