"""Span tracing with dual time attribution: wall time and model time.

A :class:`Tracer` records nested :class:`Span` objects.  Each span carries

* **wall time** — ``perf_counter_ns`` start/duration of the *simulation
  code* (how long the Python simulator took), and
* **model time** — the simulated ``cycles`` the spanned work represents
  (what the cost model says the machine took).

Keeping both on the same span is the point: the paper argues model costs
must be confronted with measurements, and a trace where the two disagree
wildly is exactly the "gap between the idealized model and reality" the
benches quantify.  Spans nest lexically (a per-thread stack), so the
Chrome ``trace_event`` exporter in :mod:`repro.obs.export` renders them as
a flame graph.

No dependencies; the tracer never touches the filesystem.
"""

from __future__ import annotations

import threading
import time
from typing import Any

__all__ = ["Span", "Tracer"]


class Span:
    """One timed region.  Use as a context manager via :meth:`Tracer.span`."""

    __slots__ = (
        "name",
        "cat",
        "tid",
        "depth",
        "start_ns",
        "dur_ns",
        "cycles",
        "args",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        cat: str,
        tid: int,
        depth: int,
        start_ns: int,
        cycles: int | None,
        args: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.tid = tid
        self.depth = depth
        self.start_ns = start_ns
        self.dur_ns: int = 0
        self.cycles = cycles
        self.args = args

    def set(self, **kv: Any) -> "Span":
        """Attach arguments to the span (shown in the trace viewer)."""
        self.args.update(kv)
        return self

    def set_cycles(self, cycles: int) -> "Span":
        """Record the model time (simulated cycles) this span represents."""
        self.cycles = int(cycles)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: Any) -> None:
        self._tracer._close(self)

    def as_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "tid": self.tid,
            "depth": self.depth,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
        }
        if self.cycles is not None:
            d["cycles"] = self.cycles
        if self.args:
            d["args"] = dict(self.args)
        return d


class Tracer:
    """Records completed spans and instant events for one session."""

    def __init__(self) -> None:
        self.epoch_ns = time.perf_counter_ns()
        self.spans: list[Span] = []
        self.instants: list[dict[str, Any]] = []
        #: spans adopted from other processes, keyed by process label
        #: (see :meth:`record_foreign`); exported as separate Chrome pids.
        self.foreign: dict[str, list[dict[str, Any]]] = {}
        self._stacks: dict[int, list[Span]] = {}
        self._lock = threading.Lock()

    def span(
        self, name: str, cat: str = "repro", cycles: int | None = None, **args: Any
    ) -> Span:
        """Open a span; close it with ``with`` or by calling ``__exit__``."""
        tid = threading.get_ident()
        with self._lock:
            stack = self._stacks.setdefault(tid, [])
            s = Span(
                self,
                name=name,
                cat=cat,
                tid=tid,
                depth=len(stack),
                start_ns=time.perf_counter_ns(),
                cycles=cycles,
                args=dict(args),
            )
            stack.append(s)
        return s

    def _close(self, span: Span) -> None:
        span.dur_ns = time.perf_counter_ns() - span.start_ns
        with self._lock:
            stack = self._stacks.get(span.tid, [])
            if span in stack:
                # pop this span and anything opened after it but leaked
                while stack and stack[-1] is not span:
                    leaked = stack.pop()
                    leaked.dur_ns = time.perf_counter_ns() - leaked.start_ns
                    self.spans.append(leaked)
                stack.pop()
            self.spans.append(span)

    def record(
        self,
        name: str,
        *,
        start_ns: int,
        dur_ns: int,
        cat: str = "repro",
        cycles: int | None = None,
        **args: Any,
    ) -> Span:
        """Record an already-timed span without opening it.

        For regions timed elsewhere — e.g. a server request whose lifetime
        crosses threads (admission on the caller's thread, completion on
        the tick thread).  Cross-thread regions must not use the
        :meth:`span` context manager: the per-thread stack would treat
        concurrent requests as leaked children of each other.  Recorded
        spans land at depth 0 and never touch the stacks.
        """
        s = Span(
            self,
            name=name,
            cat=cat,
            tid=threading.get_ident(),
            depth=0,
            start_ns=start_ns,
            cycles=cycles,
            args={k: v for k, v in args.items() if v is not None},
        )
        s.dur_ns = int(dur_ns)
        with self._lock:
            self.spans.append(s)
        return s

    def record_foreign(self, process: str, spans: list[dict[str, Any]]) -> None:
        """Adopt already-serialized spans from another process.

        ``spans`` is a list of :meth:`Span.as_dict` documents whose
        ``start_ns`` values are absolute ``perf_counter_ns`` readings in
        the *child* process.  On Linux ``perf_counter_ns`` is
        CLOCK_MONOTONIC, which is system-wide, so child timestamps align
        with this tracer's epoch directly — the exporter renders each
        foreign process as its own Chrome pid lane.
        """
        with self._lock:
            self.foreign.setdefault(process, []).extend(spans)

    def instant(self, name: str, cat: str = "repro", **args: Any) -> None:
        """A zero-duration marker event."""
        with self._lock:
            self.instants.append(
                {
                    "name": name,
                    "cat": cat,
                    "tid": threading.get_ident(),
                    "ts_ns": time.perf_counter_ns(),
                    "args": dict(args),
                }
            )

    # ------------------------------------------------------------------ #

    @property
    def n_events(self) -> int:
        return (
            len(self.spans)
            + len(self.instants)
            + sum(len(v) for v in self.foreign.values())
        )

    def total_cycles(self, name: str | None = None) -> int:
        """Sum of model-time cycles over (optionally name-filtered) spans."""
        return sum(
            s.cycles
            for s in self.spans
            if s.cycles is not None and (name is None or s.name == name)
        )

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]
