"""CLI: summarize and diff metrics dumps.

"Analytical Cost Metrics: Days of Future Past" argues cost models earn
their keep only when predictions are systematically recorded and
confronted with measurements.  This tool is the confrontation step::

    python -m repro.obs.report summary run.metrics.json
    python -m repro.obs.report diff base.metrics.json new.metrics.json \\
        --tolerance 0.02 --tol scheduler.steal_attempts=0.25
    python -m repro.obs.report --self-test

``diff`` compares every counter (and gauge) series of two dumps, using
each metric's declared goodness direction (``meta.better``) to tell a
regression from an improvement, and **exits non-zero when any series
worsens beyond its tolerance** — so a CI job can gate on it.  Tolerances
are relative; ``--tol NAME=FRAC`` overrides the global ``--tolerance`` for
one metric name (labels excluded).  Series present in only one dump are
reported as ``base-only`` / ``new-only`` and never gated — appearing or
vanishing series signal an instrumentation-shape change, not a metric
movement.

``summary`` also understands aggregated multi-process dumps (the
:class:`~repro.obs.distributed.TelemetryAggregator` output, where child
series carry a ``process`` label): it appends a per-process breakdown so
one glance shows which shard or pool worker contributed what.

``--self-test`` exercises the whole layer (registry, tracer, exporters,
validators, diff) with no filesystem access and reports pass/fail — a
cheap CI smoke test that the telemetry layer itself still works.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any

from repro.obs.export import (
    validate_chrome_trace,
    validate_metrics_dump,
)

__all__ = ["main", "diff_dumps", "self_test", "DiffEntry", "process_breakdown"]


def _load(path: str) -> dict[str, Any]:
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except OSError as exc:
        raise SystemExit(f"{path}: cannot read: {exc.strerror or exc}") from exc
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{path}: not JSON: {exc}") from exc
    problems = validate_metrics_dump(doc)
    if problems:
        raise SystemExit(f"{path}: not a valid metrics dump: {problems[0]}")
    return doc


def _base_name(key: str) -> str:
    """Series key -> metric name (strip the {label=...} suffix)."""
    return key.split("{", 1)[0]


class DiffEntry:
    """One compared series.

    ``base``/``new`` are None when the series exists in only one dump.
    One-sided series are reported (``base-only`` / ``new-only``) but never
    gated: a series appearing or vanishing between runs means the workload
    or its instrumentation changed shape, not that a shared metric moved.
    Treating absence as zero (the old behavior) flagged every freshly
    instrumented counter as an infinite regression.
    """

    __slots__ = ("key", "kind", "base", "new", "better", "tolerance")

    def __init__(
        self,
        key: str,
        kind: str,
        base: float | None,
        new: float | None,
        better: str,
        tolerance: float,
    ) -> None:
        self.key = key
        self.kind = kind
        self.base = base
        self.new = new
        self.better = better
        self.tolerance = tolerance

    @property
    def one_sided(self) -> bool:
        return self.base is None or self.new is None

    @property
    def delta(self) -> float:
        if self.one_sided:
            return 0.0
        return self.new - self.base

    @property
    def worsening(self) -> float:
        """Relative change in the *bad* direction (negative = improved)."""
        if self.one_sided:
            return 0.0
        worse = self.delta if self.better == "lower" else -self.delta
        return worse / max(abs(self.base), 1.0)

    @property
    def regressed(self) -> bool:
        return not self.one_sided and self.worsening > self.tolerance

    @property
    def improved(self) -> bool:
        return not self.one_sided and self.worsening < -1e-12

    @property
    def status(self) -> str:
        if self.one_sided:
            return "base-only" if self.new is None else "new-only"
        if self.regressed:
            return "REGRESSED"
        return "improved" if self.improved else "ok"


def diff_dumps(
    base: dict[str, Any],
    new: dict[str, Any],
    tolerance: float = 0.02,
    per_metric: dict[str, float] | None = None,
    include_gauges: bool = True,
) -> list[DiffEntry]:
    """Compare two metrics dumps series-by-series (see module docstring)."""
    per_metric = per_metric or {}
    meta = {**base.get("meta", {}), **new.get("meta", {})}
    entries: list[DiffEntry] = []
    sections = [("counter", "counters")]
    if include_gauges:
        sections.append(("gauge", "gauges"))
    for kind, section in sections:
        b_map = base.get(section, {})
        n_map = new.get(section, {})
        for key in sorted(set(b_map) | set(n_map)):
            name = _base_name(key)
            m = meta.get(name, {})
            better = m.get("better", "lower")
            tol = per_metric.get(name, tolerance)
            b_val = b_map.get(key)
            n_val = n_map.get(key)
            entries.append(
                DiffEntry(
                    key,
                    kind,
                    None if b_val is None else float(b_val),
                    None if n_val is None else float(n_val),
                    better,
                    tol,
                )
            )
    return entries


def _fmt(v: float | None) -> str:
    if v is None:
        return "-"
    if v == int(v) and abs(v) < 1e15:
        return f"{int(v):,}"
    return f"{v:.6g}"


def _print_entries(entries: list[DiffEntry], only_changed: bool) -> None:
    rows = []
    for e in entries:
        if only_changed and e.delta == 0 and not e.one_sided:
            continue
        worsening = "-" if e.one_sided else f"{e.worsening:+.1%}"
        delta = "-" if e.one_sided else _fmt(e.delta)
        rows.append((e.key, _fmt(e.base), _fmt(e.new), delta, worsening, e.status))
    if not rows:
        print("no changed series")
        return
    headers = ("series", "base", "new", "delta", "worsening", "status")
    widths = [max(len(h), *(len(r[i]) for r in rows)) for i, h in enumerate(headers)]
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)))


def derived_hit_rates(counters: dict[str, float]) -> dict[str, tuple[float, float]]:
    """Pair ``<base>.hits{labels}`` with ``<base>.misses{labels}`` counter
    series and derive hit rates: ``{series: (hits, lookups)}``.

    Covers both the cache simulators (``cache.hits{level=L1}``) and the
    search memoization layer (``memo.hits{cache=search}``) without either
    having to export a redundant ratio series.
    """
    out: dict[str, tuple[float, float]] = {}
    for key, hits in counters.items():
        name = _base_name(key)
        if not name.endswith(".hits"):
            continue
        miss_key = key.replace(".hits", ".misses", 1)
        misses = counters.get(miss_key)
        if misses is None:
            continue
        total = float(hits) + float(misses)
        if total > 0:
            out[key.replace(".hits", "", 1)] = (float(hits), total)
    return out


def derived_serve_rates(counters: dict[str, float]) -> dict[str, float]:
    """Service-level rates from the ``serve.*`` counters, when present:
    ``shed_rate`` (explicit rejections / admitted) plus the recovery
    counters normalized per served request.  Empty when the dump has no
    serving activity."""
    served = float(counters.get("serve.served", 0.0))
    shed = sum(
        float(v)
        for k, v in counters.items()
        if _base_name(k) == "serve.rejections"
    )
    total = served + shed
    if total <= 0:
        return {}
    out = {"serve.shed_rate": shed / total}
    for name in ("serve.shard_restarts", "serve.batch_retries", "serve.inproc_fallbacks"):
        if counters.get(name):
            out[f"{name}_per_1k_served"] = 1e3 * float(counters[name]) / max(served, 1.0)
    return out


def process_breakdown(doc: dict[str, Any]) -> dict[str, dict[str, int]]:
    """Distinct ``process`` label values with per-section series counts.

    ``{process: {counters: n, gauges: n, histograms: n}}`` — empty when
    the dump is single-process (no series carries a ``process`` label).
    """
    from repro.obs.metrics import parse_series_key

    out: dict[str, dict[str, int]] = {}
    for section in ("counters", "gauges", "histograms"):
        for key in doc.get(section, {}):
            _, labels = parse_series_key(key)
            proc = labels.get("process")
            if proc is None:
                continue
            row = out.setdefault(
                proc, {"counters": 0, "gauges": 0, "histograms": 0}
            )
            row[section] += 1
    return out


def cmd_summary(args: argparse.Namespace) -> int:
    doc = _load(args.file)
    print(f"metrics dump: {args.file}  (label={doc.get('label', '?')})")
    for section in ("counters", "gauges"):
        items = doc.get(section, {})
        if not items:
            continue
        print(f"\n{section}:")
        width = max(len(k) for k in items)
        for key in sorted(items):
            print(f"  {key.ljust(width)}  {_fmt(float(items[key]))}")
    rates = derived_hit_rates(doc.get("counters", {}))
    if rates:
        print("\nderived hit rates:")
        width = max(len(k) for k in rates)
        for key in sorted(rates):
            hits, total = rates[key]
            print(f"  {key.ljust(width)}  {hits / total:.1%}  ({_fmt(hits)}/{_fmt(total)})")
    serve_rates = derived_serve_rates(doc.get("counters", {}))
    if serve_rates:
        print("\nderived serving rates:")
        width = max(len(k) for k in serve_rates)
        for key in sorted(serve_rates):
            v = serve_rates[key]
            shown = f"{v:.1%}" if key.endswith("rate") else f"{v:.3g}"
            print(f"  {key.ljust(width)}  {shown}")
    hists = doc.get("histograms", {})
    if hists:
        print("\nhistograms:")
        width = max(len(k) for k in hists)
        for key in sorted(hists):
            h = hists[key]
            print(
                f"  {key.ljust(width)}  n={h['count']}  mean={h.get('mean', 0):.4g}"
                f"  min={h.get('min', 0):.4g}  max={h.get('max', 0):.4g}"
            )
    procs = process_breakdown(doc)
    if procs:
        print("\nper-process series (aggregated multi-process dump):")
        width = max(len(k) for k in procs)
        for proc in sorted(procs):
            row = procs[proc]
            print(
                f"  {proc.ljust(width)}  counters={row['counters']}"
                f"  gauges={row['gauges']}  histograms={row['histograms']}"
            )
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    per_metric: dict[str, float] = {}
    for spec in args.tol or []:
        name, _, frac = spec.partition("=")
        if not frac:
            raise SystemExit(f"--tol wants NAME=FRACTION, got {spec!r}")
        per_metric[name] = float(frac)
    base, new = _load(args.base), _load(args.new)
    entries = diff_dumps(
        base,
        new,
        tolerance=args.tolerance,
        per_metric=per_metric,
        include_gauges=not args.counters_only,
    )
    _print_entries(entries, only_changed=not args.all)
    regressed = [e for e in entries if e.regressed]
    if regressed:
        print(f"\n{len(regressed)} series regressed beyond tolerance:")
        for e in regressed:
            print(
                f"  {e.key}: {_fmt(e.base)} -> {_fmt(e.new)} "
                f"({e.worsening:+.1%} worse, tolerance {e.tolerance:.1%})"
            )
        return 1
    print("\nno regressions beyond tolerance")
    return 0


# ---------------------------------------------------------------------- #


def self_test() -> int:
    """End-to-end smoke of the telemetry layer; returns a process exit code."""
    from repro import obs

    checks = 0

    def check(cond: bool, what: str) -> None:
        nonlocal checks
        checks += 1
        if not cond:
            raise AssertionError(f"self-test failed: {what}")

    try:
        with obs.session(label="self-test") as sess:
            with sess.span("outer", cycles=100, p=4):
                with sess.span("inner", cycles=40):
                    sess.counter("demo.misses", level="L1").add(7)
                    sess.counter("demo.hits", better="higher", level="L1").add(93)
                    sess.gauge("demo.utilization").set(0.83)
                    h = sess.histogram("demo.queue_depth")
                    for d in (1, 2, 5):
                        h.observe(d)
            sess.tracer.instant("marker", note="self-test")
        check(obs.active() is None, "session did not deactivate")

        trace_doc = json.loads(json.dumps(sess.chrome_trace()))
        check(validate_chrome_trace(trace_doc) == [], "chrome trace invalid")
        spans = {e["name"] for e in trace_doc["traceEvents"] if e["ph"] == "X"}
        check({"outer", "inner"} <= spans, "spans missing from trace")

        dump = json.loads(json.dumps(sess.metrics_dump()))
        check(validate_metrics_dump(dump) == [], "metrics dump invalid")
        check(dump["counters"]["demo.misses{level=L1}"] == 7, "counter value wrong")
        check(dump["histograms"]["demo.queue_depth"]["count"] == 3, "histogram count")

        same = diff_dumps(dump, dump)
        check(not any(e.regressed for e in same), "identical dumps regressed")

        worse = json.loads(json.dumps(dump))
        worse["counters"]["demo.misses{level=L1}"] = 14  # lower-is-better: regression
        worse["counters"]["demo.hits{level=L1}"] = 50  # higher-is-better: regression
        entries = {e.key: e for e in diff_dumps(dump, worse)}
        check(entries["demo.misses{level=L1}"].regressed, "missed a lower-is-better regression")
        check(entries["demo.hits{level=L1}"].regressed, "missed a higher-is-better regression")

        better = json.loads(json.dumps(dump))
        better["counters"]["demo.misses{level=L1}"] = 1
        entries = {e.key: e for e in diff_dumps(dump, better)}
        check(
            entries["demo.misses{level=L1}"].improved
            and not entries["demo.misses{level=L1}"].regressed,
            "improvement misread as regression",
        )

        entries = {
            e.key: e
            for e in diff_dumps(dump, worse, per_metric={"demo.misses": 2.0})
        }
        check(not entries["demo.misses{level=L1}"].regressed, "per-metric tolerance ignored")
    except AssertionError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(f"repro.obs self-test: ok ({checks} checks)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize and diff repro.obs metrics dumps.",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the telemetry layer's end-to-end smoke test and exit",
    )
    sub = parser.add_subparsers(dest="command")

    p_sum = sub.add_parser("summary", help="print one metrics dump")
    p_sum.add_argument("file")
    p_sum.set_defaults(func=cmd_summary)

    p_diff = sub.add_parser(
        "diff", help="compare two dumps; exit 1 on regressions beyond tolerance"
    )
    p_diff.add_argument("base")
    p_diff.add_argument("new")
    p_diff.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        help="global relative tolerance for a worsening (default 0.02)",
    )
    p_diff.add_argument(
        "--tol",
        action="append",
        metavar="NAME=FRAC",
        help="per-metric tolerance override (repeatable)",
    )
    p_diff.add_argument(
        "--counters-only", action="store_true", help="ignore gauges in the diff"
    )
    p_diff.add_argument(
        "--all", action="store_true", help="also print unchanged series"
    )
    p_diff.set_defaults(func=cmd_diff)

    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if not args.command:
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    sys.exit(main())
