"""The paper's quantitative claims, as data.

This panel paper has no tables or figures; its evaluation surface is the
set of numeric claims in the panelists' prose.  Each is recorded here with
its section, quoted text, and the expected value/tolerance, so the claim
benches and EXPERIMENTS.md are generated against one registry rather than
scattered literals.

Tolerances are deliberately loose where the paper says "about" or "an
order of magnitude", and tight where the constant is arithmetic (160x is
exactly 80/0.5).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Claim:
    """One falsifiable statement from the paper."""

    cid: str
    section: str
    quote: str
    expected: float
    rel_tol: float

    def check(self, measured: float) -> bool:
        """Is the measured value within the claim's tolerance?"""
        if self.expected == 0:
            return abs(measured) <= self.rel_tol
        return abs(measured - self.expected) <= self.rel_tol * abs(self.expected)

    def ratio(self, measured: float) -> float:
        return measured / self.expected if self.expected else float("inf")


CLAIMS: dict[str, Claim] = {
    c.cid: c
    for c in [
        Claim(
            "C1",
            "3",
            "Transporting the result of an add 1mm costs 160x as much as "
            "performing the add",
            160.0,
            0.01,
        ),
        Claim(
            "C2",
            "3",
            "Sending it across the diagonal of an 800mm2 GPU costs 4500x as much",
            4500.0,
            0.05,
        ),
        Claim(
            "C3",
            "3",
            "the off-chip access is 50,000x more expensive [than an add]",
            50_000.0,
            0.01,
        ),
        Claim(
            "C3b",
            "3",
            "Going off chip is an order of magnitude more expensive "
            "[than cross-chip]",
            10.0,
            0.5,
        ),
        Claim(
            "C4a",
            "3",
            "an add costs about 0.5fJ/bit",
            0.5,
            0.01,
        ),
        Claim(
            "C4b",
            "3",
            "a 32-bit add takes about 200ps",
            200.0,
            0.01,
        ),
        Claim(
            "C4c",
            "3",
            "On-chip communication costs 80fJ/bit-mm",
            80.0,
            0.01,
        ),
        Claim(
            "C4d",
            "3",
            "traveling 1mm takes about 800ps",
            800.0,
            0.01,
        ),
        Claim(
            "C5",
            "3",
            "The energy overhead of an ADD instruction is 10,000x times more "
            "than the energy required to do the add",
            10_000.0,
            0.05,
        ),
        Claim(
            "C6",
            "3",
            "Adding two numbers that are co-located at a distant point ... "
            "at a cost of 1,000x or more the energy of doing the addition at "
            "the remote point",
            1_000.0,
            # "or more": benches check measured >= expected; tolerance is for
            # the >= comparison's slack, handled by check_at_least below
            0.0,
        ),
        Claim(
            "C13",
            "5",
            "many-core computing can offer improvement by 4-5 orders of "
            "magnitude over single cores",
            10_000.0,
            0.0,  # '4-5 orders': benches check the scaling trend toward it
        ),
        Claim(
            "C17a",
            "3",
            "Such programs can be mapped to accelerators that are >10,000x "
            "or more efficient than conventional architectures",
            10_000.0,
            0.0,  # "or more": checked with check_at_least
        ),
        Claim(
            "C17b",
            "3",
            "Alternatively, they can be targeted to programmable "
            "architectures that are 100s of times more efficient",
            100.0,
            0.0,  # "100s of times": checked with check_at_least
        ),
    ]
}


def check_at_least(cid: str, measured: float) -> bool:
    """For "X or more" claims: measured must meet or exceed the figure."""
    return measured >= CLAIMS[cid].expected
