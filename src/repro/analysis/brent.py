"""Brent-bound verification of actual schedules (claim C10's machinery).

Blelloch's statement rests on the work-depth model having "cost mappings
down to the machine level that reasonably capture real performance"; the
mapping is Brent's theorem.  :func:`check_schedule` takes a DAG and a
measured schedule and reports where T_P sits inside (or outside) the
theoretical envelope — greedy schedules must land inside, work-stealing
schedules are allowed the O(D) slack with a measured constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.workdepth import Dag, brent_bounds
from repro.runtime.scheduler import Schedule

__all__ = ["BrentCheck", "check_schedule"]


@dataclass(frozen=True)
class BrentCheck:
    """Where one schedule lands relative to Brent's bounds."""

    work: int
    span: int
    p: int
    t_p: int
    lower: int
    upper: int

    @property
    def within_greedy_bounds(self) -> bool:
        return self.lower <= self.t_p <= self.upper

    @property
    def speedup(self) -> float:
        return self.work / self.t_p if self.t_p else float("inf")

    @property
    def efficiency(self) -> float:
        """Speedup / P: 1.0 means perfect linear speedup."""
        return self.speedup / self.p

    @property
    def slack_vs_upper(self) -> float:
        """(T_P - upper) / span: the measured 'O(D)' constant for schedulers
        (like work stealing) that are allowed to exceed the greedy bound."""
        if self.span == 0:
            return 0.0
        return (self.t_p - self.upper) / self.span

    def describe(self) -> str:
        tag = "within" if self.within_greedy_bounds else "outside"
        return (
            f"P={self.p}: T_P={self.t_p} {tag} "
            f"[{self.lower}, {self.upper}] (W={self.work}, D={self.span}, "
            f"speedup={self.speedup:.2f}, eff={self.efficiency:.2f})"
        )


def check_schedule(dag: Dag, schedule: Schedule) -> BrentCheck:
    """Compare a schedule's makespan with Brent's bounds for its DAG."""
    w, d = dag.work(), dag.span()
    lower, upper = brent_bounds(w, d, schedule.p)
    return BrentCheck(
        work=w,
        span=d,
        p=schedule.p,
        t_p=schedule.length,
        lower=lower,
        upper=upper,
    )
