"""Pareto frontiers over mapping-search results (claim C14).

The paper: mappings "range from completely serial to minimum-depth
parallel with many points between", optimized for "execution time, energy
per op, memory footprint, or some combination".  A combination is only
meaningful relative to the Pareto frontier of the underlying metrics, so
the C14 bench reports the frontier itself.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["pareto_front", "dominates"]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Is point ``a`` <= ``b`` everywhere and < somewhere (minimization)?"""
    if len(a) != len(b):
        raise ValueError("points must have equal dimension")
    no_worse = all(x <= y for x, y in zip(a, b))
    better = any(x < y for x, y in zip(a, b))
    return no_worse and better


def pareto_front(
    items: Sequence[T],
    metrics: Callable[[T], Sequence[float]],
) -> list[T]:
    """Non-dominated subset of ``items`` under minimization of ``metrics``.

    O(n^2) — search result sets are small.  Duplicate metric points are
    all kept (they are equally good); order of the input is preserved.
    """
    pts = [tuple(metrics(it)) for it in items]
    front: list[T] = []
    for i, it in enumerate(items):
        if not any(
            dominates(pts[j], pts[i]) for j in range(len(items)) if j != i
        ):
            front.append(it)
    return front
