"""Fixed-width table rendering for the benchmark harnesses.

Every claim bench prints its results as one of these tables so the output
reads like the table the paper *would* have had.  No dependencies, plain
monospace, stable column order.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

__all__ = ["Table", "fmt_num"]


def fmt_num(v: Any, sig: int = 4) -> str:
    """Compact numeric formatting: ints plain, floats to ``sig`` figures,
    big numbers with thousands separators.

    Non-finite floats render as ``nan`` / ``inf`` / ``-inf`` rather than
    falling through to exponential formatting, and the 100 <= |v| < 10 000
    branch derives its decimal count from the magnitude so positive and
    negative values carry the same ``sig`` significant figures (a negative
    sign must not change how many digits appear).
    """
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, int):
        return f"{v:,}"
    if isinstance(v, float):
        if math.isnan(v):
            return "nan"
        if math.isinf(v):
            return "inf" if v > 0 else "-inf"
        if v == 0:
            return "0"
        a = abs(v)
        if a >= 10_000 or a < 1e-3:
            return f"{v:.{sig - 1}e}"
        if a >= 100:
            int_digits = len(str(int(a)))
            decimals = max(0, sig - int_digits)
            return f"{v:,.{decimals}f}"
        return f"{v:.{sig}g}"
    return str(v)


class Table:
    """A fixed-width text table.

    >>> t = Table("demo", ["x", "x^2"])
    >>> t.add_row(2, 4); t.add_row(3, 9)
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([fmt_num(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for k, cell in enumerate(row):
                widths[k] = max(widths[k], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), len(sep))]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.render())
        print()
