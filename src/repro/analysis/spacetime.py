"""Space-time diagrams: render a mapping the way the paper talks about it.

The F&M model's whole point is that *when* and *where* are explicit.  A
space-time diagram — PEs down the page, cycles across it — makes a mapping
legible at a glance: the edit-distance wavefront literally marches as
anti-diagonals, the serial mapping is one long row, a tree reduce is a
collapsing triangle.  :func:`render_spacetime` draws these as monospace
text (no plotting dependencies), used by the examples and handy in tests
and debugging sessions.

Cell glyphs: the first letter of the node's group (``H``, ``m`` for mac,
``+`` for unlabelled arithmetic...), ``.`` for an idle PE-cycle.  Wide
schedules are windowed; a legend maps glyphs back to groups.
"""

from __future__ import annotations

from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec, Mapping

__all__ = ["render_spacetime", "occupancy_grid"]


def occupancy_grid(
    graph: DataflowGraph, mapping: Mapping, grid: GridSpec
) -> dict[tuple[int, int], dict[int, int]]:
    """place -> {cycle: node id} for all on-chip compute nodes."""
    occ: dict[tuple[int, int], dict[int, int]] = {}
    for nid in range(graph.n_nodes):
        if not graph.is_compute(nid) or mapping.offchip[nid]:
            continue
        place = mapping.place_of(nid)
        occ.setdefault(place, {})[mapping.time_of(nid)] = nid
    return occ


def render_spacetime(
    graph: DataflowGraph,
    mapping: Mapping,
    grid: GridSpec,
    t_start: int = 0,
    width: int = 72,
    title: str | None = None,
) -> str:
    """A monospace space-time diagram of a mapped program.

    Shows cycles ``[t_start, t_start + width)``; places are listed in
    linear order, only those the mapping uses.  Returns the diagram text.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    occ = occupancy_grid(graph, mapping, grid)
    if not occ:
        return "(no on-chip compute to draw)"
    places = sorted(occ, key=lambda p: p[1] * grid.width + p[0])
    t_end = t_start + width

    glyph_of: dict[str, str] = {}

    def glyph(nid: int) -> str:
        group = graph.group[nid] or graph.ops[nid]
        g0 = str(group)[0]
        if str(group) not in glyph_of:
            # disambiguate collisions by case-flipping, then digits
            used = set(glyph_of.values())
            cand = g0
            if cand in used:
                cand = g0.swapcase()
            k = 0
            while cand in used:
                cand = str(k % 10)
                k += 1
            glyph_of[str(group)] = cand
        return glyph_of[str(group)]

    lines = []
    if title:
        lines.append(title)
    header_tens = "".join(
        str((t // 10) % 10) if t % 10 == 0 else " " for t in range(t_start, t_end)
    )
    lines.append(f"{'PE':>8} |{header_tens}")
    for p in places:
        row = []
        cells = occ[p]
        for t in range(t_start, t_end):
            row.append(glyph(cells[t]) if t in cells else ".")
        lines.append(f"{str(p):>8} |{''.join(row)}")
    total_span = mapping.makespan(graph)
    lines.append(
        f"cycles [{t_start}, {min(t_end, total_span)}) of {total_span}; "
        + "legend: "
        + ", ".join(f"{v}={k}" for k, v in sorted(glyph_of.items()))
    )
    return "\n".join(lines)
