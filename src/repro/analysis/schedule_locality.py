"""Schedule-aware locality: the work-depth model's locality extension.

Section 2 (Blelloch): "There are even reasonably simple extensions
[of the work-depth model] that support accounting for locality."  The
simplest executable form: annotate each task with the memory block set it
touches, give every worker a private LRU cache, and replay a schedule —
now *the scheduler* has a measurable cache footprint.  The classic
phenomenon this surfaces (from the parallel-cache-complexity literature):
a chain of tasks sharing a working set is cheap when one worker runs it
end to end (serial schedules, or work stealing's depth-first owner
execution) and expensive when tasks scatter across workers (each landing
is a cold working set).

:func:`replay_schedule` is the measurement; :func:`chain_workload` builds
the canonical chains-with-shared-blocks DAG the A6 bench sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.machines.cachesim import LRUCache
from repro.models.workdepth import Dag
from repro.runtime.scheduler import Schedule

__all__ = ["LocalityReport", "replay_schedule", "chain_workload"]


@dataclass
class LocalityReport:
    """Cache behaviour of one schedule replay."""

    misses: int
    accesses: int
    per_worker_misses: list[int]

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def replay_schedule(
    dag: Dag,
    schedule: Schedule,
    task_addrs: Sequence[Sequence[int]],
    cache_words: int = 64,
    block_words: int = 1,
) -> LocalityReport:
    """Replay a schedule against per-worker private LRU caches.

    Tasks execute in start-time order; each task's address list is
    streamed through its assigned worker's cache.  Returns total and
    per-worker miss counts.  (No coherence traffic is modelled — tasks
    sharing read-only blocks simply warm whichever caches run them, which
    is the effect under study.)
    """
    if len(task_addrs) != dag.n_nodes:
        raise ValueError(
            f"need one address list per task ({dag.n_nodes}), got {len(task_addrs)}"
        )
    caches = [
        LRUCache(cache_words, block_words, name=f"w{w}")
        for w in range(schedule.p)
    ]
    order = sorted(schedule.start_times, key=lambda t: (schedule.start_times[t], t))
    accesses = 0
    for task in order:
        w = schedule.assignments[task]
        cache = caches[w]
        for addr in task_addrs[task]:
            cache.access(int(addr))
            accesses += 1
    per_worker = [c.stats.misses for c in caches]
    return LocalityReport(
        misses=sum(per_worker), accesses=accesses, per_worker_misses=per_worker
    )


def chain_workload(
    n_chains: int,
    chain_len: int,
    block_words_per_chain: int = 16,
    duration: int = 4,
) -> tuple[Dag, list[list[int]]]:
    """``n_chains`` independent serial chains; every task of chain c streams
    the same ``block_words_per_chain`` addresses (the chain's working set).

    The locality question in its purest form: any schedule achieves the
    same Brent numbers (W = n*len*duration, D = len*duration), but a
    schedule that keeps a chain on one worker pays the working set once,
    while one that migrates it pays per migration.
    """
    if n_chains < 1 or chain_len < 1:
        raise ValueError("need at least one chain and one task")
    dag = Dag()
    addrs: list[list[int]] = []
    for c in range(n_chains):
        base = c * block_words_per_chain
        footprint = list(range(base, base + block_words_per_chain))
        prev = None
        for _ in range(chain_len):
            node = dag.add_node(duration)
            addrs.append(footprint)
            if prev is not None:
                dag.add_edge(prev, node)
            prev = node
    return dag, addrs
