"""Analysis and reporting utilities.

``claims`` encodes the paper's numeric claims as checkable records;
``brent`` verifies scheduler runs against the work-depth bounds;
``pareto`` extracts frontiers from mapping-search results; ``report``
renders the fixed-width tables every benchmark harness prints.
"""

from repro.analysis.brent import BrentCheck, check_schedule
from repro.analysis.claims import CLAIMS, Claim
from repro.analysis.pareto import pareto_front
from repro.analysis.report import Table

__all__ = [
    "BrentCheck",
    "check_schedule",
    "CLAIMS",
    "Claim",
    "pareto_front",
    "Table",
]
