"""Ablation A8: tailoring memory-per-PE to the application family.

Section 3: "A programmable target can be realized by putting a
programmable processor at each grid point and surrounding it with many
'tiles' of memory ... The amount of memory per processor is also a
parameter that can be adjusted to tailor the architecture to a family of
applications."

The measurement: for each workload x mapping, the *minimum* memory tile
that keeps the mapping legal (the liveness sweep's per-place peak), and
what the storage legality check does when the architecture provides less.
Serial mappings concentrate the whole working set on one PE; spread
mappings shrink the requirement roughly by the PE count — the knob and
the tailoring, in one table.
"""

import pytest

from repro.algorithms.edit_distance import edit_distance_graph, wavefront_mapping
from repro.algorithms.stencil import owner_computes_mapping, stencil_graph
from repro.analysis.report import Table
from repro.core.default_mapper import serial_mapping
from repro.core.idioms import build_scan
from repro.core.legality import check_legality, compute_liveness
from repro.core.mapping import GridSpec

GRID = GridSpec(4, 1)


def workloads():
    out = {}
    sg = stencil_graph(32, 3)
    out["stencil 32x3"] = (
        sg,
        {
            "serial": serial_mapping(sg, GRID),
            "owner-4": owner_computes_mapping(sg, 32, 4, GRID),
        },
    )
    sc = build_scan(32, 4, GRID)
    out["scan 32"] = (
        sc.graph,
        {"serial": serial_mapping(sc.graph, GRID), "blocked-4": sc.mapping},
    )
    ed = edit_distance_graph(28, 28)
    out["edit distance 28"] = (
        ed,
        {
            "serial": serial_mapping(ed, GRID),
            "wavefront-4": wavefront_mapping(ed, 28, 4, GRID),
        },
    )
    return out


def measure():
    rows = []
    for wname, (g, mappings) in workloads().items():
        for mname, m in mappings.items():
            live = compute_liveness(g, m, GRID)
            need = live.max_live_any_place
            rows.append((wname, mname, need, live.footprint_words))
    return rows


def test_bench_memory_tailoring(benchmark, record_table):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    tbl = Table(
        "A8: minimum memory tile per PE (words) by workload and mapping",
        ["workload", "mapping", "min words/PE", "sum of per-PE peaks"],
    )
    by_key = {}
    for wname, mname, need, total in rows:
        tbl.add_row(wname, mname, need, total)
        by_key[(wname, mname)] = need
    # spreading the work shrinks the per-PE tile materially for the
    # streaming workloads...
    for wname in ("stencil 32x3", "scan 32"):
        spread = min(v for (w, m), v in by_key.items()
                     if w == wname and m != "serial")
        assert spread * 2 <= by_key[(wname, "serial")], wname
    # ...but NOT for the DP wavefront: each PE's band keeps ~N cells live
    # (values feed the next row on another PE a full band later), so the
    # tile barely shrinks — memory-per-PE really is application-family
    # specific, which is the tailoring point
    ed_spread = by_key[("edit distance 28", "wavefront-4")]
    ed_serial = by_key[("edit distance 28", "serial")]
    assert ed_spread < ed_serial            # some saving...
    assert ed_spread > 0.5 * ed_serial      # ...but far from 1/P
    record_table("a08_memory_tailoring", tbl)


def test_bench_storage_check_enforces_the_knob(benchmark, record_table):
    """Provide less memory than a mapping needs: the legality check names
    the offending PE; provide exactly enough: legal."""

    def check():
        g = stencil_graph(32, 3)
        m = owner_computes_mapping(g, 32, 4, GRID)
        need = compute_liveness(g, m, GRID).max_live_any_place
        tight = GridSpec(4, 1, pe_memory_words=need)
        starved = GridSpec(4, 1, pe_memory_words=max(1, need // 2))
        ok = check_legality(g, m, tight)
        bad = check_legality(g, m, starved)
        return need, ok, bad

    need, ok, bad = benchmark.pedantic(check, rounds=1, iterations=1)
    assert ok.ok
    assert not bad.ok and bad.by_kind("storage")
    tbl = Table(
        "A8': the storage legality check at the sizing boundary",
        ["memory words/PE", "legal", "violation"],
    )
    tbl.add_row(need, True, "-")
    tbl.add_row(need // 2, False, str(bad.by_kind("storage")[0])[:60])
    record_table("a08_storage_check", tbl)
