"""Claim C14: "For each function there are many possible mappings that
range from completely serial to minimum-depth parallel with many points
between.  One can systematically search the space of possible mappings to
optimize a given figure of merit: execution time, energy per op, memory
footprint, or some combination" (Section 3).

The bench searches the mapping space of two workloads (stencil and FFT)
three ways — structured sweep, simulated annealing, exhaustive on a tiny
kernel — and reports the time/energy/footprint Pareto frontier plus the
per-FoM winners.  The "completely serial to minimum-depth" span of the
space is checked explicitly: the sweep's fastest point must approach the
function's inherent depth, and its serial point must equal the work.

All searching goes through the stable :mod:`repro.api` facade — the same
calls a served ``search`` request executes (workloads are named registry
entries, figures of merit are weight dicts).
"""


from repro import api
from repro.analysis.pareto import pareto_front
from repro.analysis.report import Table
from repro.core.function import DataflowGraph

MACHINE = api.MachineSpec(8, 1)
EDP = {"time": 1, "energy": 1}
# `steps` means stencil time-steps here, not anneal steps — a WorkloadSpec
# keeps workload params separate from search knobs.
STENCIL_32x3 = api.WorkloadSpec.of("stencil", n=32, steps=3)


def search_workload(spec, seed):
    swept = api.search(spec, MACHINE, fom=EDP)
    annealed = api.search(
        spec, MACHINE, fom=EDP, method="anneal", steps=300, seed=seed
    )[0]
    return swept, annealed


def test_bench_pareto_frontier(benchmark, record_table, bench_opts):
    swept, annealed = benchmark.pedantic(
        lambda: search_workload(STENCIL_32x3, bench_opts.seed),
        rounds=1, iterations=1,
    )
    points = swept + [annealed]
    front = pareto_front(points, lambda r: r.metrics())
    tbl = Table(
        "C14a: stencil 32x3 — mapping space (frontier members marked)",
        ["mapping", "cycles", "energy fJ", "footprint", "on frontier"],
    )
    front_set = {id(r) for r in front}
    for r in points:
        t, e, f = r.metrics()
        tbl.add_row(r.label, int(t), e, int(f), id(r) in front_set)
    assert len(front) >= 2  # a real tradeoff, not a single winner
    record_table("c14_pareto", tbl)


def test_bench_serial_to_min_depth_span(benchmark, record_table):
    """The space spans 'completely serial' to near the function's depth."""

    def measure():
        g = api.compile("fft", n=32, variant="dit")
        swept = api.search(g, MACHINE, fom={"time": 1})
        serial = next(r for r in swept if r.label == "serial")
        fastest = swept[0]
        return g, serial, fastest

    g, serial, fastest = benchmark.pedantic(measure, rounds=1, iterations=1)
    tbl = Table(
        "C14b: FFT-32 — the serial-to-parallel span of the mapping space",
        ["point", "cycles", "reference"],
    )
    offload = MACHINE.grid().tech.offchip_cycles()
    tbl.add_row("function work (ops)", g.work(), "serial lower bound")
    tbl.add_row("serial mapping", serial.cost.cycles, "~ work + load latency")
    tbl.add_row("fastest swept mapping", fastest.cost.cycles, "")
    tbl.add_row("function depth (min-depth ideal)", g.depth(), "parallel lower bound")
    # serial mapping executes one op per cycle after the first load
    assert serial.cost.cycles >= g.work()
    assert serial.cost.cycles <= g.work() + offload + 8
    # parallelism buys a real factor
    assert fastest.cost.cycles < serial.cost.cycles / 2
    record_table("c14_span", tbl)


def test_bench_fom_changes_the_winner(benchmark, record_table):
    """Optimizing time, energy, and EDP elect different mappings —
    the 'or some combination' clause has teeth."""

    def measure():
        spec = api.WorkloadSpec.of("stencil", n=48, steps=2)
        winners = {}
        for name, fom in (
            ("time", {"time": 1}),
            ("energy", {"energy": 1}),
            ("edp", EDP),
        ):
            winners[name] = api.search(spec, MACHINE, fom=fom)[0]
        return winners

    winners = benchmark.pedantic(measure, rounds=1, iterations=1)
    tbl = Table(
        "C14c: winner by figure of merit (stencil 48x2)",
        ["figure of merit", "winning mapping", "cycles", "energy fJ"],
    )
    for name, r in winners.items():
        tbl.add_row(name, r.label, r.cost.cycles, r.cost.energy_total_fj)
    assert winners["time"].cost.cycles <= winners["energy"].cost.cycles
    assert (
        winners["energy"].cost.energy_total_fj
        <= winners["time"].cost.energy_total_fj
    )
    # time and energy genuinely disagree on this workload
    assert winners["time"].label != winners["energy"].label
    record_table("c14_fom_winners", tbl)


def test_bench_exhaustive_validates_heuristics(benchmark, record_table):
    """Ground truth on a tiny kernel: the sweep/anneal winners are within
    a small factor of the true optimum.

    The kernel is hand-built — the facade accepts a raw DataflowGraph
    wherever it accepts a registry name.
    """

    def measure():
        g = DataflowGraph()
        a = g.input("A", (0,))
        b = g.input("A", (1,))
        s = g.op("+", a, b, index=(0,))
        t = g.op("*", s, s, index=(1,))
        u = g.op("+", t, s, index=(2,))
        g.mark_output(u, "o")
        machine = api.MachineSpec(3, 1)
        best = api.search(g, machine, fom=EDP, method="exhaustive")[0]
        swept = api.search(g, machine, fom=EDP)[0]
        ann = api.search(g, machine, fom=EDP, method="anneal", steps=200, seed=0)[0]
        return best, swept, ann

    best, swept, ann = benchmark.pedantic(measure, rounds=1, iterations=1)
    tbl = Table(
        "C14d: heuristics vs exhaustive optimum (tiny kernel, EDP)",
        ["searcher", "EDP"],
    )
    tbl.add_row("exhaustive", best.fom)
    tbl.add_row("sweep", swept.fom)
    tbl.add_row("anneal", ann.fom)
    assert best.fom <= swept.fom
    assert best.fom <= ann.fom
    assert ann.fom <= 1.5 * best.fom
    record_table("c14_exhaustive", tbl)
