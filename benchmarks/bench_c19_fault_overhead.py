"""Claim C19: resilience is cheap when nothing fails and honest when
something does.

The chaos layer threads recovery hooks through the grid machine, the NoC
and the search pool.  Two things are measured here:

1. **Zero-fault overhead** — running with the instrumentation in place
   but no active fault plan must cost essentially nothing (the hooks are
   a single branch when off).
2. **Cost of resilience** — under an aggressive seeded fault plan the
   system still produces results bit-identical to the fault-free run
   wherever it claims recovery, and the extra cycles/energy/wall-time it
   paid are reported, not hidden.
"""

import time

from repro import obs
from repro.algorithms.edit_distance import edit_distance_graph
from repro.analysis.report import Table
from repro.core.default_mapper import default_mapping
from repro.core.mapping import GridSpec
from repro.core.search import SearchEngine, sweep_placements
from repro.faults import FaultPlan, FaultSpec, injection
from repro.machines.grid import GridMachine
from repro.testing import assert_search_equivalent

GRID = GridSpec(4, 2)
INPUTS = {"R": lambda i: (i * 7 + 3) % 5, "Q": lambda j: (j * 3 + 1) % 5}
CHAOS = FaultSpec(
    pe_fail=0.25, link_down=0.15, bitflip=0.3, worker_crash=0.5,
    worker_poison=0.2,
)
SEED = 7


def _grid_campaign(machine, graph, mapping):
    return machine.run(graph, mapping, INPUTS)


def test_bench_fault_overhead(benchmark, record_table):
    graph = edit_distance_graph(6)
    mapping = default_mapping(graph, GRID)
    machine = GridMachine(GRID, strict=False)
    engine = SearchEngine(
        parallel=True, n_workers=2, task_timeout_s=30.0,
        max_retries=2, retry_backoff_s=0.01,
    )

    def measure():
        t0 = time.perf_counter()
        golden = _grid_campaign(machine, graph, mapping)
        ref_sweep = sweep_placements(graph, GRID)
        t_clean = time.perf_counter() - t0

        with obs.session(label="c19", write_on_exit=False) as sess, \
                injection(FaultPlan(SEED, CHAOS)) as inj:
            t0 = time.perf_counter()
            chaos = _grid_campaign(machine, graph, mapping)
            chaos_sweep = sweep_placements(graph, GRID, engine=engine)
            t_chaos = time.perf_counter() - t0
            recovered_metric = sess.metrics.get_value(
                "fault.recovered", kind="pe_fail"
            )
        return golden, ref_sweep, chaos, chaos_sweep, t_clean, t_chaos, \
            inj, recovered_metric

    golden, ref_sweep, chaos, chaos_sweep, t_clean, t_chaos, inj, rec = \
        benchmark.pedantic(measure, rounds=1, iterations=1)

    # recovery must be real: bit-identical outputs wherever it succeeded
    if chaos.verified:
        assert chaos.outputs == golden.outputs
    assert_search_equivalent(chaos_sweep, ref_sweep, context="c19 chaos sweep")
    assert inj.n_injected > 0, "the chaos spec must actually inject"
    assert inj.n_recovered > 0, "the campaign must actually recover"
    assert inj.all_handled, "every fault must be recovered or surfaced"
    if rec is not None:
        assert rec > 0  # the obs counters saw the recoveries too

    tbl = Table(
        "C19: cost of resilience (edit-distance 6x6 on 4x2 grid, seed 7)",
        ["path", "grid cycles", "grid energy fJ", "wall time s",
         "faults inj/rec"],
    )
    tbl.add_row(
        "fault-free", golden.cost.cycles,
        round(golden.cost.energy_total_fj, 1), round(t_clean, 3), "0/0",
    )
    tbl.add_row(
        "chaos (recovered)", chaos.cost.cycles,
        round(chaos.cost.energy_total_fj, 1), round(t_chaos, 3),
        f"{inj.n_injected}/{inj.n_recovered}",
    )
    record_table("c19_fault_overhead", tbl)


def test_bench_zero_fault_hooks_are_free(benchmark, record_table):
    """With no injection scope active the chaos hooks must not measurably
    tax the grid machine (single extra branch per run)."""
    graph = edit_distance_graph(6)
    mapping = default_mapping(graph, GRID)
    machine = GridMachine(GRID)

    def measure():
        t0 = time.perf_counter()
        for _ in range(5):
            machine.run(graph, mapping, INPUTS)
        return time.perf_counter() - t0

    wall = benchmark.pedantic(measure, rounds=1, iterations=1)
    tbl = Table(
        "C19b: zero-fault hook overhead (5 grid runs, no injection scope)",
        ["path", "wall time s"],
    )
    tbl.add_row("hooks compiled in, no plan active", round(wall, 3))
    record_table("c19_zero_fault", tbl)
