"""Shared configuration surface for the claim benchmarks.

Every bench used to hard-code its seed, output directory, and worker
count; this module unifies them behind one option set::

    --seed N      base RNG seed for stochastic searchers   (default 1)
    --out DIR     artifact directory                       (default benchmarks/out)
    --json        also emit machine-readable JSON tables   (default on)
    --workers N   worker processes for parallel benches    (default 2)
    --backend B   evaluation backend for backend-aware benches
                  (reference | fast | compiled; default: session default)

The same options are honored everywhere they can appear:

* ``repro-bench`` (the console script, :func:`repro.cli.bench_main`)
  parses them and forwards to pytest via ``REPRO_BENCH_*`` environment
  variables;
* ``benchmarks/conftest.py`` reads them back (:func:`options_from_env`)
  so the ``bench_opts`` fixture gives each bench the resolved values;
* standalone tools may call :func:`add_bench_arguments` on their own
  parser to stay flag-compatible.
"""

from __future__ import annotations

import argparse
import os
import pathlib
from dataclasses import dataclass

_DEFAULT_OUT = pathlib.Path(__file__).parent / "out"

__all__ = [
    "BenchOptions",
    "add_bench_arguments",
    "options_from_args",
    "options_from_env",
    "to_env",
]


@dataclass(frozen=True)
class BenchOptions:
    """The resolved common options every bench sees."""

    seed: int = 1
    out: pathlib.Path = _DEFAULT_OUT
    json: bool = True
    workers: int = 2
    backend: str | None = None

    def engine(self):
        """The :class:`~repro.core.search.SearchEngine` for ``backend``
        (``None`` resolves through ``$REPRO_BACKEND`` to the session
        default, normally ``compiled``)."""
        from repro.compiled import resolve_backend
        from repro.core.search import engine_for_backend

        return engine_for_backend(resolve_backend(self.backend))


def add_bench_arguments(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the shared bench flags to any parser (idempotent surface)."""
    parser.add_argument(
        "--seed", type=int, default=BenchOptions.seed,
        help="base RNG seed for stochastic searchers (anneal etc.)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=_DEFAULT_OUT,
        help="directory for bench artifacts (tables, metrics dumps)",
    )
    parser.add_argument(
        "--json", dest="json", action="store_true", default=True,
        help="emit machine-readable JSON tables next to the text ones",
    )
    parser.add_argument(
        "--no-json", dest="json", action="store_false",
        help="text tables only",
    )
    parser.add_argument(
        "--workers", type=int, default=BenchOptions.workers,
        help="worker processes for parallel benches (clamped to the host)",
    )
    parser.add_argument(
        "--backend", choices=("reference", "fast", "compiled"), default=None,
        help="evaluation backend for backend-aware benches "
        "(default: the session default, normally compiled)",
    )
    return parser


def options_from_args(args: argparse.Namespace) -> BenchOptions:
    return BenchOptions(
        seed=args.seed, out=args.out, json=bool(args.json), workers=args.workers,
        backend=getattr(args, "backend", None),
    )


def to_env(options: BenchOptions) -> dict[str, str]:
    """Serialize options for the pytest hop (``repro-bench`` -> conftest)."""
    return {
        "REPRO_BENCH_SEED": str(options.seed),
        "REPRO_BENCH_OUT": str(options.out),
        "REPRO_BENCH_JSON": "1" if options.json else "0",
        "REPRO_BENCH_WORKERS": str(options.workers),
        "REPRO_BENCH_BACKEND": options.backend or "",
    }


def options_from_env(environ: dict[str, str] | None = None) -> BenchOptions:
    env = os.environ if environ is None else environ
    return BenchOptions(
        seed=int(env.get("REPRO_BENCH_SEED", BenchOptions.seed)),
        out=pathlib.Path(env.get("REPRO_BENCH_OUT", _DEFAULT_OUT)),
        json=env.get("REPRO_BENCH_JSON", "1") != "0",
        workers=int(env.get("REPRO_BENCH_WORKERS", BenchOptions.workers)),
        backend=env.get("REPRO_BENCH_BACKEND") or None,
    )
