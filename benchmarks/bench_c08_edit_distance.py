"""Claim C8: the paper's worked example — the edit-distance recurrence with
the anti-diagonal mapping on P processors (Section 3).

The bench:
1.  shows the legality checker rejecting the *literal* printed formula
    (``time floor(i/P)*N + j``) — dependent rows share a schedule;
2.  runs the "marching anti-diagonals" mapping the prose describes, legal
    and verified against the serial DP;
3.  sweeps P and reports speedup over the fully-serial mapping — the
    figure the example implies (speedup ~ P).
"""

import numpy as np

from repro.algorithms.edit_distance import (
    edit_distance_graph,
    levenshtein,
    paper_mapping_literal,
    wavefront_mapping,
)
from repro.analysis.report import Table
from repro.core.default_mapper import serial_mapping
from repro.core.legality import check_legality
from repro.core.mapping import GridSpec
from repro.machines.grid import GridMachine

N = 48


def sweep_p():
    rng = np.random.default_rng(1)
    R = rng.integers(0, 4, size=N).tolist()
    Q = rng.integers(0, 4, size=N).tolist()
    d_ref = levenshtein(R, Q)[0]
    g = edit_distance_graph(N, N, cell="lev")
    rows = []
    for p in (1, 2, 4):
        grid = GridSpec(max(p, 1), 1)
        ser = serial_mapping(g, grid)
        t_serial = ser.makespan(g)
        if p == 1:
            rows.append((p, t_serial, t_serial, 1.0, True))
            continue
        m = wavefront_mapping(g, N, p, grid)
        rep = check_legality(g, m, grid)
        res = GridMachine(grid).run(
            g, m,
            {"R": {(i,): R[i] for i in range(N)},
             "Q": {(j,): Q[j] for j in range(N)}},
        )
        assert res.outputs[("H", N - 1, N - 1)] == d_ref
        rows.append((p, t_serial, res.cycles, t_serial / res.cycles, rep.ok))
    return rows


def test_bench_literal_mapping_rejected(benchmark, record_table):
    def check():
        g = edit_distance_graph(24, 24)
        m = paper_mapping_literal(g, 24, 4)
        return check_legality(g, m, GridSpec(4, 1))

    rep = benchmark(check)
    assert not rep.ok
    assert rep.by_kind("causality")
    tbl = Table(
        "C8a: the printed mapping `time floor(i/P)*N + j` (N=24, P=4)",
        ["check", "result"],
    )
    tbl.add_row("legal?", rep.ok)
    tbl.add_row("causality violations", len(rep.by_kind("causality")))
    tbl.add_row("first violation", str(rep.violations[0]))
    record_table("c08_literal_mapping", tbl)


def test_bench_wavefront_speedup(benchmark, record_table):
    rows = benchmark.pedantic(sweep_p, rounds=1, iterations=1)
    tbl = Table(
        f"C8b: edit distance N={N}, marching anti-diagonals vs serial",
        ["P", "serial cycles", "wavefront cycles", "speedup", "legal"],
    )
    for p, ts, tw, s, ok in rows:
        tbl.add_row(p, ts, tw, round(s, 2), ok)
        assert ok
    # speedup approaches P
    final_p, *_rest = rows[-1]
    assert rows[-1][3] > 0.7 * final_p
    record_table("c08_wavefront_speedup", tbl)
