"""Ablation A2: asymmetric read/write costs reorder the locality ladder.

Section 2 (Blelloch) lists "asymmetry in read-write costs" among the
simple model extensions.  This ablation shows the extension has teeth:
under the (M, B, omega) asymmetric external-memory model, the recursive
cache-oblivious matmul — the C11 winner — performs ~2x more block *writes*
than the ijk variants (its accumulation pattern writes C tiles back every
recursion level), so as omega grows the ranking flips: the write-lean
naive loop overtakes it around omega ~ 10, and the cache-aware blocked
variant keeps the crown throughout.

The omega sweep is the figure; the crossover point is the headline number.
"""


from repro.algorithms.matmul import trace_blocked, trace_naive, trace_recursive
from repro.analysis.report import Table
from repro.models.asymmetric import asymmetric_cache_cost

N, M_WORDS, B_WORDS = 16, 128, 4

VARIANTS = {
    "naive": lambda: trace_naive(N),
    "blocked-4": lambda: trace_blocked(N, 4),
    "recursive": lambda: trace_recursive(N, 2),
}


def sweep():
    rows = []
    for omega in (1, 2, 4, 8, 16, 32, 64):
        costs = {
            name: asymmetric_cache_cost(gen(), M_WORDS, B_WORDS, omega=omega)
            for name, gen in VARIANTS.items()
        }
        rows.append((omega, costs))
    return rows


def crossover_omega() -> float:
    """Analytic flip point between naive and recursive: reads + omega*writes."""
    cn = asymmetric_cache_cost(trace_naive(N), M_WORDS, B_WORDS)
    cr = asymmetric_cache_cost(trace_recursive(N, 2), M_WORDS, B_WORDS)
    # cn.reads + w*cn.writes = cr.reads + w*cr.writes
    return (cn.reads - cr.reads) / (cr.writes - cn.writes)


def test_bench_asymmetric_reordering(benchmark, record_table):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    tbl = Table(
        f"A2: {N}x{N} matmul under (M={M_WORDS}, B={B_WORDS}, omega) costs",
        ["omega", "naive", "blocked-4", "recursive", "winner"],
    )
    for omega, costs in rows:
        winner = min(costs, key=lambda k: costs[k].cost)
        tbl.add_row(omega, costs["naive"].cost, costs["blocked-4"].cost,
                    costs["recursive"].cost, winner)
    first, last = rows[0][1], rows[-1][1]
    # symmetric regime: recursive is no worse than naive
    assert first["recursive"].cost <= first["naive"].cost
    # write-expensive regime: the ranking flips
    assert last["recursive"].cost > last["naive"].cost
    # blocked (cache-aware, write-lean) wins at both ends
    for _omega, costs in (rows[0], rows[-1]):
        assert min(costs, key=lambda k: costs[k].cost) == "blocked-4"

    x = crossover_omega()
    tbl2 = Table("A2: naive/recursive crossover", ["quantity", "value"])
    cn = asymmetric_cache_cost(trace_naive(N), M_WORDS, B_WORDS)
    cr = asymmetric_cache_cost(trace_recursive(N, 2), M_WORDS, B_WORDS)
    tbl2.add_row("naive block writes", cn.writes)
    tbl2.add_row("recursive block writes", cr.writes)
    tbl2.add_row("crossover omega", round(x, 1))
    assert 2 < x < 64
    record_table("a02_asymmetric", tbl, tbl2)
