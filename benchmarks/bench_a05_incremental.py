"""Ablation A5: sequential algorithms "are actually parallel when applied
to inputs in a random order" (Blelloch's bio, quoted in the paper).

The measurement: run the *unchanged sequential* greedy algorithm, record
its iteration-dependence DAG, and report the DAG's depth — the parallel
time a scheduler could achieve without altering a single answer.  Sweep n
for sorted vs random iteration orders:

*  sorted order on a path: depth = n (fully serial, as taught);
*  random order: depth ~ O(log n) — the measured curve grows like log n
   while the sorted curve grows like n, so the *order*, not the
   algorithm, was the bottleneck.

Same story for unbalanced-BST insertion (depth = tree height).
"""

import numpy as np

from repro.algorithms.graphs import path_graph
from repro.algorithms.incremental import (
    bst_depth,
    greedy_coloring,
    greedy_mis,
    random_order,
)
from repro.analysis.report import Table

SIZES = (64, 256, 1024)


def sweep():
    rows = []
    for n in SIZES:
        g = path_graph(n)
        col_sorted = greedy_coloring(g, np.arange(n)).depth
        col_rand = int(np.median([
            greedy_coloring(g, random_order(n, s)).depth for s in range(5)
        ]))
        mis_rand = int(np.median([
            greedy_mis(g, random_order(n, s)).depth for s in range(5)
        ]))
        bst_sorted = bst_depth(np.arange(n)).depth
        bst_rand = int(np.median([
            bst_depth(np.random.default_rng(s).permutation(n)).depth
            for s in range(5)
        ]))
        rows.append((n, col_sorted, col_rand, mis_rand, bst_sorted, bst_rand))
    return rows


def test_bench_hidden_parallelism(benchmark, record_table):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    tbl = Table(
        "A5: dependence depth of sequential greedy algorithms (path graph)",
        ["n", "coloring sorted", "coloring random", "MIS random",
         "BST sorted", "BST random"],
    )
    for row in rows:
        tbl.add_row(*row)
        n, cs, cr, mr, bs, br = row
        assert cs == n and bs == n          # sorted orders are serial
        assert cr <= 6 * np.log2(n)          # random orders are shallow
        assert br <= 6 * np.log2(n)
        assert mr <= 6 * np.log2(n)
    # growth shape: sorted scales with n (16x), random adds a few levels
    assert rows[-1][1] / rows[0][1] == SIZES[-1] / SIZES[0]
    assert rows[-1][2] - rows[0][2] <= 15
    record_table("a05_incremental", tbl)


def test_bench_parallelism_available(benchmark, record_table):
    """Work/depth of the random-order runs: the parallelism a scheduler
    could exploit grows ~ n / log n."""

    def measure():
        out = []
        for n in SIZES:
            g = path_graph(n)
            res = greedy_coloring(g, random_order(n, 1))
            out.append((n, res.work, res.depth, res.parallelism))
        return out

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    tbl = Table(
        "A5': available parallelism of random-order greedy coloring",
        ["n", "work", "depth", "work/depth"],
    )
    par = []
    for row in rows:
        tbl.add_row(row[0], row[1], row[2], round(row[3], 1))
        par.append(row[3])
    assert par == sorted(par)  # parallelism grows with n
    record_table("a05_parallelism", tbl)
