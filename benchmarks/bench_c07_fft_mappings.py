"""Claim C7: "When comparing two FFT algorithms that are both O(NlogN),
the one that is 50,000x more efficient is preferred" (Section 3).

Two axes, both invisible to asymptotic analysis:

1.  *Function choice*: DIT vs DIF vs radix-4 have identical O(N log N) but
    different multiply counts and different memory-boundary behaviour.
2.  *Mapping choice*: for one function (radix-2 DIT), the placement sweep
    produces mappings whose energy and time differ by large constant
    factors — including the extreme comparison the quote is really about:
    all-data-off-chip per stage (a conventional machine's working set
    miss) versus on-chip operands, whose per-word energy gap is the
    paper's 50,000x.
"""

import numpy as np
import pytest

from repro.algorithms.fft import OpCount, fft_graph, fft_iterative, fft_radix4, fft_recursive_dit
from repro.analysis.report import Table
from repro.core.cost import evaluate_cost
from repro.core.default_mapper import schedule_asap, serial_mapping
from repro.core.mapping import GridSpec
from repro.core.search import FigureOfMerit, sweep_placements
from repro.machines.technology import TECH_5NM

N = 64


def function_comparison():
    rng = np.random.default_rng(0)
    x = rng.normal(size=N) + 1j * rng.normal(size=N)
    rows = []
    for name, fn in (
        ("radix-2 DIT", fft_recursive_dit),
        ("radix-4", fft_radix4),
        ("iterative radix-2", fft_iterative),
    ):
        c = OpCount()
        out = fn(x, c)
        assert np.allclose(out, np.fft.fft(x))
        rows.append((name, c.mul, c.add, c.weighted()))
    return rows


def mapping_sweep():
    g = fft_graph(N, "dit")
    grid = GridSpec(8, 1)
    return g, grid, sweep_placements(g, grid, FigureOfMerit.edp())


def test_bench_fft_functions(benchmark, record_table):
    rows = benchmark.pedantic(function_comparison, rounds=2, iterations=1)
    tbl = Table(
        f"C7a: FFT functions at N={N} — same O(N log N), different constants",
        ["function", "complex muls", "complex adds", "weighted ops"],
    )
    for r in rows:
        tbl.add_row(*r)
    muls = {r[0]: r[1] for r in rows}
    assert muls["radix-4"] < muls["radix-2 DIT"]  # the radix constant factor
    record_table("c07_fft_functions", tbl)


def test_bench_fft_mapping_space(benchmark, record_table):
    g, grid, results = benchmark.pedantic(mapping_sweep, rounds=1, iterations=1)
    tbl = Table(
        f"C7b: radix-2 DIT N={N} under the placement sweep (EDP order)",
        ["mapping", "cycles", "energy fJ", "comm frac", "EDP"],
    )
    for r in results:
        tbl.add_row(
            r.label,
            r.cost.cycles,
            r.cost.energy_total_fj,
            round(r.cost.communication_fraction, 3),
            r.fom,
        )
    cycles = [r.cost.cycles for r in results]
    assert max(cycles) / min(cycles) > 2  # mappings genuinely differ
    record_table("c07_fft_mappings", tbl)


def test_bench_onchip_vs_offchip_operand_gap(benchmark, record_table):
    """The 50,000x itself: the same butterfly with on-chip vs off-chip
    operands, end to end through the cost model."""

    def gap():
        g = fft_graph(8, "dit")
        grid = GridSpec(1, 1)
        onchip = schedule_asap(g, grid, lambda n: (0, 0), inputs_offchip=False)
        offchip = serial_mapping(g, grid)  # inputs stream from bulk memory
        c_on = evaluate_cost(g, onchip, grid)
        c_off = evaluate_cost(g, offchip, grid)
        return c_on, c_off

    c_on, c_off = benchmark(gap)
    per_word_gap = TECH_5NM.offchip_vs_add_ratio()
    tbl = Table(
        "C7c: operand residence for the same function (N=8 DIT)",
        ["mapping", "offchip fJ", "total fJ"],
    )
    tbl.add_row("operands on-chip", c_on.energy_offchip_fj, c_on.energy_total_fj)
    tbl.add_row("operands off-chip", c_off.energy_offchip_fj, c_off.energy_total_fj)
    tbl.add_row("per-word energy gap (paper: 50,000x)", per_word_gap, "")
    assert c_off.energy_total_fj > 20 * c_on.energy_total_fj
    assert per_word_gap == pytest.approx(50_000.0)
    record_table("c07_operand_residence", tbl)
