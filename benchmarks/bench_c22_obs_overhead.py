"""Claim C22: telemetry is affordable — running the C21 smoke campaign
under a full observability session (counters + histograms + spans +
cross-process aggregation) costs <= 5% wall time over running it dark.

The obs layer's design contract since PR 1 is "a single predictable
branch when off, cheap when on": instrumented hot paths call
``obs.active()`` once per operation, series lookups are one dict probe,
and histogram observation is O(1) bucket arithmetic.  This bench pins
the "cheap when on" half now that PR 6 made sessions *more* loaded
(log2 bucket upkeep, delta cursors, span batches riding worker
responses) — if instrumentation creep ever makes telemetry expensive,
this gate catches it before the serving stack inherits the cost.

Method: run the compiled C21 smoke campaign (three-FoM sweep + anneal,
the heaviest instrumented path in the repo) ``ROUNDS`` times with no
session and the same ``ROUNDS`` times inside ``obs.session``; compare
best-of-rounds wall times (min is the standard noise filter for
same-work timing comparisons).  Caches and compiled programs are reset
between runs so every run does identical work.

Standalone mode (CI)::

    PYTHONPATH=src python benchmarks/bench_c22_obs_overhead.py --smoke

exits nonzero when overhead exceeds the gate.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro import obs
from repro.analysis.report import Table
from repro.core.memo import clear_global_caches
from repro.core.search import SearchEngine

sys.path.insert(0, str(pathlib.Path(__file__).parent))

#: telemetry may cost at most this factor over the dark run
OVERHEAD_GATE = 1.05
#: timing rounds per arm; best-of is compared
ROUNDS = 3


def _campaign_parts():
    from bench_c21_compiled_core import SMOKE, _fresh_programs, search_campaign

    return SMOKE, _fresh_programs, search_campaign


def _timed_run(sizing, seed, with_obs: bool) -> float:
    _sizing, fresh_programs, search_campaign = _campaign_parts()
    engine = SearchEngine(memoize=True, incremental=True, compiled=True)
    clear_global_caches()
    fresh_programs()
    if with_obs:
        with obs.session(label="c22-overhead"):
            t0 = time.perf_counter()
            search_campaign(sizing["workload"], engine, seed, sizing["steps"])
            return time.perf_counter() - t0
    t0 = time.perf_counter()
    search_campaign(sizing["workload"], engine, seed, sizing["steps"])
    return time.perf_counter() - t0


def measure_overhead(seed: int, rounds: int = ROUNDS) -> tuple[float, float]:
    """(best dark wall time, best instrumented wall time), interleaved so
    thermal/load drift hits both arms equally."""
    sizing, _, _ = _campaign_parts()
    dark: list[float] = []
    lit: list[float] = []
    for _ in range(rounds):
        dark.append(_timed_run(sizing, seed, with_obs=False))
        lit.append(_timed_run(sizing, seed, with_obs=True))
    return min(dark), min(lit)


# ---------------------------------------------------------------------- #
# pytest bench


def test_bench_obs_overhead(benchmark, record_table, bench_opts):
    t_dark, t_lit = benchmark.pedantic(
        lambda: measure_overhead(bench_opts.seed), rounds=1, iterations=1
    )
    overhead = t_lit / max(t_dark, 1e-9)
    tbl = Table(
        "C22: telemetry overhead on the C21 smoke campaign (best of "
        f"{ROUNDS})",
        ["arm", "wall time s", "ratio"],
    )
    tbl.add_row("no session", round(t_dark, 3), 1.0)
    tbl.add_row("obs.session", round(t_lit, 3), round(overhead, 4))
    record_table("c22_obs_overhead", tbl)
    assert overhead <= OVERHEAD_GATE, (
        f"telemetry costs {overhead:.3f}x (> {OVERHEAD_GATE}x gate)"
    )


# ---------------------------------------------------------------------- #
# standalone mode (CI smoke gate)


def main(argv: list[str] | None = None) -> int:
    from common import add_bench_arguments, options_from_args

    import argparse

    parser = argparse.ArgumentParser(
        prog="bench-c22",
        description="Telemetry overhead gate: obs on vs off on the C21 smoke campaign.",
    )
    add_bench_arguments(parser)
    parser.add_argument(
        "--smoke", action="store_true",
        help="accepted for CI symmetry (the campaign is always smoke-sized)",
    )
    parser.add_argument(
        "--rounds", type=int, default=ROUNDS,
        help=f"timing rounds per arm, best-of compared (default {ROUNDS})",
    )
    args = parser.parse_args(argv)
    opts = options_from_args(args)

    t_dark, t_lit = measure_overhead(opts.seed, rounds=args.rounds)
    overhead = t_lit / max(t_dark, 1e-9)
    metrics = {
        "t_dark_s": t_dark,
        "t_instrumented_s": t_lit,
        "overhead_ratio": overhead,
        "gate": OVERHEAD_GATE,
        "rounds": args.rounds,
        "ok": overhead <= OVERHEAD_GATE,
    }
    if opts.json:
        opts.out.mkdir(parents=True, exist_ok=True)
        path = opts.out / "c22_obs_overhead.main.json"
        path.write_text(json.dumps(metrics, indent=1) + "\n")
        print(f"wrote {path}")
    print(
        f"telemetry overhead {overhead:.3f}x "
        f"(dark {t_dark:.2f}s, instrumented {t_lit:.2f}s, gate {OVERHEAD_GATE}x)"
    )
    if overhead > OVERHEAD_GATE:
        print(
            f"FAIL: overhead {overhead:.3f}x exceeds {OVERHEAD_GATE}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
