"""Ablation A7: work-efficient PRAM algorithms — Vishkin's bet, measured.

Section 5: "I recall well how in 1979 these compiler and complexity
backdrops did not prevent me from betting my career on an independent
direction: work efficient PRAM algorithms."  List ranking is that
direction's flagship problem.  Three ladder rungs on the same random
lists:

*  serial pointer chase — Theta(n) work, Theta(n) steps;
*  Wyllie pointer jumping — Theta(log n) steps but Theta(n log n) work
   (fast and wasteful);
*  sparse ruling sets — Theta(n) work AND polylog steps: the
   work-efficient algorithm that justified the research program.

The table shows work-per-element flat for ruling sets and growing like
log n for Wyllie, with both keeping step counts orders below n.
"""

import numpy as np

from repro.algorithms.list_ranking import (
    pointer_jumping_pram,
    random_list,
    rank_serial,
    ruling_set_pram,
)
from repro.analysis.report import Table

SIZES = (64, 256, 1024)


def sweep():
    rows = []
    for n in SIZES:
        nxt, _ = random_list(n, seed=n)
        want = rank_serial(nxt)
        ranks_w, wy = pointer_jumping_pram(nxt)
        ranks_r, rs = ruling_set_pram(nxt, seed=0)
        assert np.array_equal(ranks_w, want)
        assert np.array_equal(ranks_r, want)
        rows.append((n, n, wy.work, wy.steps, rs.work, rs.steps))
    return rows


def test_bench_work_efficiency_ladder(benchmark, record_table):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    tbl = Table(
        "A7: list ranking — serial vs Wyllie vs ruling sets",
        ["n", "serial work", "wyllie work", "wyllie steps",
         "ruling work", "ruling steps"],
    )
    for row in rows:
        tbl.add_row(*row)
    # work-efficiency: ruling-set work tracks n; Wyllie's diverges
    first, last = rows[0], rows[-1]
    growth = SIZES[-1] / SIZES[0]
    assert last[4] / first[4] < 2 * growth       # ~linear in n
    assert last[2] / first[2] > 1.3 * growth     # super-linear (n log n)
    # both parallel algorithms stay far below n steps at scale
    assert last[3] < SIZES[-1] / 5 and last[5] < SIZES[-1] / 5
    record_table("a07_work_efficiency", tbl)


def test_bench_per_element_view(benchmark, record_table):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    tbl = Table(
        "A7': work per element (the efficiency measure itself)",
        ["n", "wyllie work/n", "ruling work/n"],
    )
    ruling = []
    for n, _s, wy_w, _ws, rs_w, _rs in rows:
        tbl.add_row(n, round(wy_w / n, 2), round(rs_w / n, 2))
        ruling.append(rs_w / n)
    assert max(ruling) - min(ruling) < 8  # flat within a small band
    record_table("a07_per_element", tbl)
