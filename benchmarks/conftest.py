"""Shared infrastructure for the claim benchmarks.

Every bench regenerates the numbers behind one of the paper's quantitative
claims (C1-C14 in DESIGN.md), asserts the claim's tolerance, and writes its
table to ``benchmarks/out/<bench>.txt`` so the "tables the paper would have
had" exist as artifacts.  Run with ``pytest benchmarks/ --benchmark-only``;
add ``-s`` to see the tables inline.

Machine-readable artifacts (the bench *trajectory*):

* ``benchmarks/out/<name>.json`` — each recorded table's title, columns,
  and rows (plus optional tolerances), so successive runs can be diffed
  numerically instead of eyeballing text tables;
* ``benchmarks/out/<module>.metrics.json`` — every bench module runs under
  an ``obs.session`` (autouse fixture below), so the telemetry counters of
  all simulators it exercised land next to its tables.  Diff two runs with
  ``python -m repro.obs.report diff``.
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

from repro import obs
from repro.analysis.report import Table

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from common import options_from_env  # noqa: E402 (benchmarks/common.py)

OPTIONS = options_from_env()
OUT_DIR = OPTIONS.out


@pytest.fixture(scope="session")
def bench_opts():
    """The shared --seed/--out/--json/--workers options (see common.py).

    ``repro-bench`` forwards its flags here through ``REPRO_BENCH_*`` env
    vars; a bare ``pytest benchmarks/`` run sees the defaults.
    """
    return OPTIONS


def _table_payload(table: Table) -> dict:
    return {
        "title": table.title,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
    }


@pytest.fixture(scope="session")
def record_table():
    """Print tables, persist them as text AND as machine-readable JSON."""

    OUT_DIR.mkdir(parents=True, exist_ok=True)

    def _record(name: str, *tables: Table, tolerances: dict | None = None) -> None:
        text = "\n\n".join(t.render() for t in tables)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        if OPTIONS.json:
            doc = {
                "name": name,
                "tables": [_table_payload(t) for t in tables],
            }
            if tolerances:
                doc["tolerances"] = dict(tolerances)
            (OUT_DIR / f"{name}.json").write_text(
                json.dumps(doc, indent=1, sort_keys=False) + "\n"
            )
        print()
        print(text)

    return _record


@pytest.fixture(scope="module", autouse=True)
def obs_bench_session(request):
    """Run every bench module under one obs session; dump its metrics.

    The artifact is ``benchmarks/out/<module>.metrics.json`` — one telemetry
    dump per bench file, capturing scheduler/cache/search/NoC counters for
    everything the module simulated.
    """
    name = pathlib.Path(request.module.__file__).stem
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    with obs.session(label=name) as sess:
        yield sess
    (OUT_DIR / f"{name}.metrics.json").write_text(
        json.dumps(sess.metrics_dump(), indent=1) + "\n"
    )
