"""Shared infrastructure for the claim benchmarks.

Every bench regenerates the numbers behind one of the paper's quantitative
claims (C1-C14 in DESIGN.md), asserts the claim's tolerance, and writes its
table to ``benchmarks/out/<bench>.txt`` so the "tables the paper would have
had" exist as artifacts.  Run with ``pytest benchmarks/ --benchmark-only``;
add ``-s`` to see the tables inline.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.report import Table

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def record_table():
    """Print a table and persist it under benchmarks/out/."""

    OUT_DIR.mkdir(exist_ok=True)

    def _record(name: str, *tables: Table) -> None:
        text = "\n\n".join(t.render() for t in tables)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record
