"""Claim C17 (Section 3): "Such programs can be mapped to accelerators
that are >10,000x or more efficient than conventional architectures.
Alternatively, they can be targeted to programmable architectures that
are 100s of times more efficient."

Measured end to end with the package's own machines, all at the same 5 nm
technology point:

*  **conventional architecture**: the multicore model running the paper's
   Section-2 sum program — energy per *useful* arithmetic op, including
   the 10,000x instruction overhead and the memory system;
*  **accelerator**: the F&M stencil dataflow owner-mapped onto the grid
   (no instructions at all — ROMs from the lowering; operands local or a
   hop away);
*  **programmable target**: XMT-style simple cores (in-order TCUs with
   ~1% of the OoO core's per-instruction overhead).

The ratios are the claim.  Note what drives them: the accelerator does
not beat the multicore's *arithmetic* (identical adders) — it deletes the
instruction machinery and the long wires, exactly the paper's argument.
"""


from repro.algorithms.stencil import owner_computes_mapping, stencil_graph
from repro.analysis.claims import check_at_least
from repro.analysis.report import Table
from repro.core.cost import evaluate_cost
from repro.core.mapping import GridSpec
from repro.machines.multicore import MulticoreMachine
from repro.machines.technology import TECH_5NM
from repro.machines.xmt import XmtConfig
from repro.models.ram import sum_program


def measure():
    # conventional: per useful ALU op on the multicore
    n = 256
    mc = MulticoreMachine()
    res, ram = mc.run_single(sum_program(), {1: 0, 2: n}, {0: [1] * n})
    assert ram.registers[0] == n
    conventional = res.energy_total_fj / n

    # accelerator: owner-mapped stencil dataflow, operands on chip
    grid = GridSpec(8, 1)
    g = stencil_graph(64, 8)
    m = owner_computes_mapping(g, 64, 8, grid, inputs_offchip=False)
    cost = evaluate_cost(g, m, grid)
    accelerator = cost.energy_total_fj / cost.n_compute

    # programmable: simple-core (TCU) instruction energy
    cfg = XmtConfig()
    programmable = TECH_5NM.add_energy_word_fj() * (
        1.0 + TECH_5NM.instruction_overhead_factor / cfg.overhead_reduction
    )
    return conventional, accelerator, programmable


def test_bench_efficiency_gap(benchmark, record_table):
    conventional, accelerator, programmable = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    acc_ratio = conventional / accelerator
    prog_ratio = conventional / programmable

    tbl = Table(
        "C17: energy per useful operation, same 5 nm technology",
        ["target", "fJ / op", "vs conventional"],
    )
    tbl.add_row("conventional multicore (per useful add)", conventional, 1.0)
    tbl.add_row("F&M accelerator (stencil, owner-mapped)", accelerator,
                round(acc_ratio, 1))
    tbl.add_row("programmable simple cores (TCU)", programmable,
                round(prog_ratio, 1))

    tbl2 = Table("C17: the paper's ratios", ["claim", "paper", "measured"])
    tbl2.add_row("accelerator efficiency", ">= 10,000x", round(acc_ratio))
    tbl2.add_row("programmable efficiency", "100s of times", round(prog_ratio))
    assert check_at_least("C17a", acc_ratio), f"accelerator only {acc_ratio:.0f}x"
    assert check_at_least("C17b", prog_ratio), f"programmable only {prog_ratio:.0f}x"
    record_table("c17_efficiency_gap", tbl, tbl2)


def test_bench_where_the_energy_goes(benchmark, record_table):
    """Decomposition: the gap is instruction machinery + wires, not ALUs."""

    def decompose():
        n = 256
        mc = MulticoreMachine()
        res, _ = mc.run_single(sum_program(), {1: 0, 2: n}, {0: [1] * n})
        grid = GridSpec(8, 1)
        g = stencil_graph(64, 8)
        m = owner_computes_mapping(g, 64, 8, grid, inputs_offchip=False)
        cost = evaluate_cost(g, m, grid)
        return res, cost

    res, cost = benchmark.pedantic(decompose, rounds=1, iterations=1)
    tbl = Table(
        "C17 decomposition: energy shares by component",
        ["machine", "component", "share"],
    )
    total_mc = res.energy_total_fj
    tbl.add_row("multicore", "instruction overhead",
                f"{res.energy_instruction_overhead_fj / total_mc:.1%}")
    tbl.add_row("multicore", "memory movement",
                f"{res.energy_memory_fj / total_mc:.1%}")
    tbl.add_row("multicore", "useful ALU",
                f"{res.energy_useful_alu_fj / total_mc:.2%}")
    total_acc = cost.energy_total_fj
    tbl.add_row("accelerator", "wires + SRAM",
                f"{cost.energy_transport_fj / total_acc:.1%}")
    tbl.add_row("accelerator", "arithmetic",
                f"{cost.energy_compute_fj / total_acc:.1%}")
    # the conventional machine spends <0.1% of energy on the actual adds
    assert res.energy_useful_alu_fj / total_mc < 0.001
    # the accelerator spends >25% on arithmetic — orders better
    assert cost.energy_compute_fj / total_acc > 0.25
    record_table("c17_decomposition", tbl)
