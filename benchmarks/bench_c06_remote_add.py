"""Claim C6: "Adding two numbers that are co-located at a distant point
requires first transporting them to the processor - again at a cost of
1,000x or more the energy of doing the addition at the remote point"
(Section 3).

Construction: two operands resident at PE (d, 0); their sum is needed at
PE (0, 0).  Mapping "haul": compute at (0, 0), paying two d-mm transports.
Mapping "remote": compute at (d, 0) — the addition at the remote point —
and ship one result.  The bench reports the haul/remote-add energy ratio
(the claim) and the haul/remote total ratio (the engineering win).
"""


from repro.analysis.claims import check_at_least
from repro.analysis.report import Table
from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec, Mapping
from repro.core.recompute import auto_rematerialize
from repro.machines.grid import GridMachine
from repro.machines.technology import TECH_5NM


def build(distance: int, compute_at_remote: bool):
    g = DataflowGraph()
    a = g.const(21)
    b = g.const(21)
    s = g.op("+", a, b)
    out = g.op("copy", s)  # consumption point at PE 0
    g.mark_output(out, "o")
    grid = GridSpec(distance + 1, 1)
    m = Mapping(g.n_nodes)
    far = (distance, 0)
    m.set(a, far, 0)
    m.set(b, far, 0)
    transit = grid.transit_cycles(far, (0, 0))
    if compute_at_remote:
        m.set(s, far, 1)
        m.set(out, (0, 0), 2 + transit)
    else:
        m.set(s, (0, 0), 1 + transit)
        m.set(out, (0, 0), 2 + transit)
    return g, m, grid


def energies(distance: int):
    out = {}
    for mode in (False, True):
        g, m, grid = build(distance, mode)
        res = GridMachine(grid).run(g, m, {})
        assert res.outputs["o"] == 42
        out["remote" if mode else "haul"] = res.cost
    return out


def test_bench_remote_add(benchmark, record_table):
    costs = benchmark(energies, 10)
    haul = costs["haul"]
    add_fj = TECH_5NM.add_energy_word_fj()

    # the claim: hauling the operands costs >= 1000x the remote add
    haul_transport = haul.energy_onchip_fj
    ratio = haul_transport / add_fj
    assert check_at_least("C6", ratio), f"measured {ratio}"

    tbl = Table(
        "C6: haul operands vs add at the remote point (d = 10 mm)",
        ["mapping", "transport fJ", "compute fJ", "total fJ"],
    )
    for name in ("haul", "remote"):
        c = costs[name]
        tbl.add_row(name, c.energy_transport_fj, c.energy_compute_fj,
                    c.energy_total_fj)
    tbl2 = Table("C6: the paper's ratio", ["quantity", "paper", "measured"])
    tbl2.add_row("operand transport / remote add", ">= 1,000", ratio)
    tbl2.add_row(
        "haul total / remote total", "(engineering win)",
        haul.energy_total_fj / costs["remote"].energy_total_fj,
    )
    record_table("c06_remote_add", tbl, tbl2)


def build_misplaced(distance: int):
    """Operands AND consumers live at the far PE; the add was (mis)placed at
    PE 0 — the recompute optimizer should move the addition to the data,
    which is exactly the paper's 'do the addition at the remote point'."""
    g = DataflowGraph()
    a = g.const(21)
    b = g.const(21)
    s = g.op("+", a, b)
    u1 = g.op("copy", s)
    u2 = g.op("+", s, s)
    g.mark_output(u1, "o1")
    g.mark_output(u2, "o2")
    grid = GridSpec(distance + 1, 1)
    far = (distance, 0)
    from repro.core.default_mapper import schedule_asap

    place = {a: far, b: far, s: (0, 0), u1: far, u2: far}
    m = schedule_asap(g, grid, lambda nid: place.get(nid, (0, 0)),
                      inputs_offchip=False)
    return g, m, grid


def test_bench_auto_remat_moves_add_to_the_data(benchmark, record_table):
    """Ablation: the recompute optimizer relocates a misplaced addition to
    the remote point where its operands and consumers live."""

    def optimize():
        g, m, grid = build_misplaced(10)
        return auto_rematerialize(g, m, grid)

    res = benchmark.pedantic(optimize, rounds=3, iterations=1)
    assert res.clones_made >= 1
    assert res.energy_saved_fj > 0
    tbl = Table(
        "C6 ablation: auto-rematerialization on the haul mapping",
        ["metric", "value"],
    )
    tbl.add_row("clones made", res.clones_made)
    tbl.add_row("energy before (fJ)", res.energy_before_fj)
    tbl.add_row("energy after (fJ)", res.energy_after_fj)
    tbl.add_row("saved (fJ)", res.energy_saved_fj)
    record_table("c06_auto_remat", tbl)
