"""Claim C21: the compiled flat-graph kernel core accelerates the full
search campaign >= 3x over the reference interpreter — bit-identically —
and the persistent on-disk memo store makes a cold process restart >= 5x
faster than recomputing.

Three measurements:

*  **campaign** — the C18 search loop (three-FoM structured sweep +
   anneal) on the reference path versus the compiled engine
   (``FlatProgram`` lowering + vectorized placement/energy kernels +
   incremental anneal state).  Equality is checked row-by-row by the
   differential oracle, not eyeballed.
*  **disk restart** — the same campaign with the memo cache backed by a
   :class:`~repro.core.memo.DiskMemoStore`: the "cold" run computes and
   persists, the "warm" run simulates a process restart (fresh in-memory
   cache, same store directory) and must reload every result
   bit-identically.
*  **cache replay** — an address trace through a two-level hierarchy:
   per-access reference loop versus the array replayer
   (:func:`repro.compiled.replay_into`), equal final stats required.

Standalone mode (what the CI ``bench-smoke`` job runs)::

    PYTHONPATH=src python benchmarks/bench_c21_compiled_core.py --json --smoke

exits nonzero on any divergence or if the campaign speedup falls under
the smoke gate (1.5x — deliberately lower than the pytest gate so a
noisy shared runner does not flake the build).
"""

from __future__ import annotations

import json
import pathlib
import random
import sys
import tempfile
import time

from repro import api
from repro.analysis.report import Table
from repro.core.memo import DiskMemoStore, MemoCache, clear_global_caches
from repro.core.search import SearchEngine
from repro.machines.cachesim import CacheHierarchy, LRUCache, run_trace
from repro.testing import assert_search_equivalent

MACHINE = api.MachineSpec(8, 1)
FOMS = [
    ("time", {"time": 1}),
    ("energy", {"energy": 1}),
    ("edp", {"time": 1, "energy": 1}),
]

#: full-size campaign (the pytest bench and ``--json`` without ``--smoke``)
FULL = {"workload": api.WorkloadSpec.of("stencil", n=32, steps=3), "steps": 250}
#: CI smoke sizing: same shape, small enough for a shared runner
SMOKE = {"workload": api.WorkloadSpec.of("stencil", n=16, steps=2), "steps": 150}

REFERENCE_ENGINE = SearchEngine()
TRACE_LEN = 60_000
CACHE_SPEC = [(256, 8, 2, "L1"), (4096, 16, 4, "L2")]


def search_campaign(spec, engine, seed, steps):
    """Sweep under three FoMs, then anneal — the C18 user loop."""
    sweeps = {
        name: api.search(spec, MACHINE, fom=fom, engine=engine)
        for name, fom in FOMS
    }
    annealed = api.search(
        spec, MACHINE, fom=FOMS[-1][1], method="anneal",
        steps=steps, seed=seed, engine=engine,
    )[0]
    return sweeps, annealed


def assert_campaigns_equal(a, b) -> None:
    (sweeps_a, anneal_a), (sweeps_b, anneal_b) = a, b
    for name, _fom in FOMS:
        assert_search_equivalent(sweeps_a[name], sweeps_b[name],
                                 context=f"sweep/{name}")
    assert_search_equivalent(anneal_a, anneal_b, context="anneal")


def _fresh_programs() -> None:
    from repro.compiled import clear_programs

    clear_programs()


def run_campaign_pair(sizing, seed):
    """(reference campaign, compiled campaign, t_ref, t_compiled)."""
    compiled_engine = SearchEngine(memoize=True, incremental=True, compiled=True)
    clear_global_caches()
    _fresh_programs()
    t0 = time.perf_counter()
    ref = search_campaign(sizing["workload"], REFERENCE_ENGINE, seed,
                          sizing["steps"])
    t_ref = time.perf_counter() - t0
    clear_global_caches()
    _fresh_programs()
    t0 = time.perf_counter()
    comp = search_campaign(sizing["workload"], compiled_engine, seed,
                           sizing["steps"])
    t_comp = time.perf_counter() - t0
    return ref, comp, t_ref, t_comp


def run_disk_restart(sizing, seed, root):
    """(cold campaign, warm campaign, t_cold, t_warm, store stats)."""

    def engine_on(store: DiskMemoStore) -> SearchEngine:
        return SearchEngine(
            memoize=True, incremental=True, compiled=True,
            cache=MemoCache("c21-disk", store=store),
        )

    # double the anneal: its memo entry is one key, so the warm run pays
    # one disk read for it no matter how long the cold trajectory was —
    # exactly the asymmetry a persistent store is for
    steps = sizing["steps"] * 2
    cold_store = DiskMemoStore("bench-c21", root=root)
    clear_global_caches()
    _fresh_programs()
    t0 = time.perf_counter()
    cold = search_campaign(sizing["workload"], engine_on(cold_store), seed,
                           steps)
    t_cold = time.perf_counter() - t0

    # a "restart": fresh in-memory cache and store handle, same directory
    warm_store = DiskMemoStore("bench-c21", root=root)
    clear_global_caches()
    _fresh_programs()
    t0 = time.perf_counter()
    warm = search_campaign(sizing["workload"], engine_on(warm_store), seed,
                           steps)
    t_warm = time.perf_counter() - t0
    ok, corrupt = warm_store.verify()
    return cold, warm, t_cold, t_warm, {
        "entries": ok, "corrupt": corrupt,
        "disk_hits": warm_store.stats.hits,
    }


def run_replay_pair(seed):
    """(reference stats, compiled stats, t_ref, t_compiled)."""
    rng = random.Random(seed)
    trace = [
        ("w" if rng.random() < 0.3 else "r", rng.randrange(0, 1 << 14))
        for _ in range(TRACE_LEN)
    ]

    def build() -> CacheHierarchy:
        return CacheHierarchy([LRUCache(*row) for row in CACHE_SPEC])

    ref_cache, comp_cache = build(), build()
    t0 = time.perf_counter()
    run_trace(ref_cache, trace, backend="reference")
    t_ref = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_trace(comp_cache, trace, backend="compiled")
    t_comp = time.perf_counter() - t0

    def stats(c: CacheHierarchy) -> dict:
        out = {lvl.name: lvl.stats.as_dict() for lvl in c.levels}
        out["mem_accesses"] = c.mem_accesses
        out["mem_writebacks"] = c.mem_writebacks
        return out

    return stats(ref_cache), stats(comp_cache), t_ref, t_comp


# ---------------------------------------------------------------------- #
# pytest benches


def test_bench_compiled_campaign_speedup(benchmark, record_table, bench_opts):
    seed = bench_opts.seed

    def measure():
        return run_campaign_pair(FULL, seed)

    ref, comp, t_ref, t_comp = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert_campaigns_equal(comp, ref)
    speedup = t_ref / t_comp
    tbl = Table(
        "C21: compiled kernel core vs reference (stencil 32x3, 3 FoMs + anneal)",
        ["path", "wall time s", "speedup"],
    )
    tbl.add_row("reference", round(t_ref, 3), 1.0)
    tbl.add_row("compiled", round(t_comp, 3), round(speedup, 2))
    record_table("c21_compiled_campaign", tbl)
    assert speedup >= 3.0, f"compiled core only {speedup:.2f}x over reference"


def test_bench_disk_memo_restart(benchmark, record_table, bench_opts, tmp_path):
    seed = bench_opts.seed

    def measure():
        return run_disk_restart(FULL, seed, str(tmp_path / "store"))

    cold, warm, t_cold, t_warm, stats = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert_campaigns_equal(warm, cold)
    assert stats["corrupt"] == 0, f"corrupt disk entries: {stats}"
    assert stats["disk_hits"] > 0, "warm run must hit the disk store"
    speedup = t_cold / t_warm
    tbl = Table(
        "C21b: disk memo store — cold compute vs warm restart (same campaign)",
        ["run", "wall time s", "speedup", "disk hits"],
    )
    tbl.add_row("cold (compute+persist)", round(t_cold, 3), 1.0, 0)
    tbl.add_row("warm (restart)", round(t_warm, 3), round(speedup, 2),
                stats["disk_hits"])
    record_table("c21_disk_restart", tbl)
    assert speedup >= 5.0, f"warm restart only {speedup:.2f}x over cold"


def test_bench_cache_replay(benchmark, record_table, bench_opts):
    def measure():
        return run_replay_pair(bench_opts.seed)

    ref_stats, comp_stats, t_ref, t_comp = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert comp_stats == ref_stats, (
        f"replay stats diverge: {comp_stats} != {ref_stats}"
    )
    speedup = t_ref / max(t_comp, 1e-9)
    tbl = Table(
        f"C21c: cache trace replay — per-access loop vs array kernel "
        f"({TRACE_LEN} accesses, 2 levels)",
        ["path", "wall time s", "speedup"],
    )
    tbl.add_row("reference loop", round(t_ref, 3), 1.0)
    tbl.add_row("compiled replay", round(t_comp, 3), round(speedup, 2))
    record_table("c21_cache_replay", tbl)


# ---------------------------------------------------------------------- #
# standalone mode (CI smoke gate)


def main(argv: list[str] | None = None) -> int:
    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from common import add_bench_arguments, options_from_args

    import argparse

    parser = argparse.ArgumentParser(
        prog="bench-c21",
        description="Compiled kernel core vs reference: speedup + parity gate.",
    )
    add_bench_arguments(parser)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizing + relaxed 1.5x gate (what CI runs per commit)",
    )
    args = parser.parse_args(argv)
    opts = options_from_args(args)
    sizing = SMOKE if args.smoke else FULL
    campaign_gate = 1.5 if args.smoke else 3.0
    restart_gate = 1.5 if args.smoke else 5.0

    failures: list[str] = []
    metrics: dict = {"mode": "smoke" if args.smoke else "full",
                     "seed": opts.seed, "gate": campaign_gate}

    ref, comp, t_ref, t_comp = run_campaign_pair(sizing, opts.seed)
    try:
        assert_campaigns_equal(comp, ref)
    except AssertionError as exc:
        failures.append(f"campaign divergence: {exc}")
    campaign_speedup = t_ref / max(t_comp, 1e-9)
    metrics["campaign"] = {
        "t_reference_s": t_ref, "t_compiled_s": t_comp,
        "speedup": campaign_speedup,
    }
    if campaign_speedup < campaign_gate:
        failures.append(
            f"campaign speedup {campaign_speedup:.2f}x < gate {campaign_gate}x"
        )

    with tempfile.TemporaryDirectory(prefix="bench-c21-store-") as root:
        cold, warm, t_cold, t_warm, store_stats = run_disk_restart(
            sizing, opts.seed, root
        )
    try:
        assert_campaigns_equal(warm, cold)
    except AssertionError as exc:
        failures.append(f"disk restart divergence: {exc}")
    restart_speedup = t_cold / max(t_warm, 1e-9)
    metrics["disk_restart"] = {
        "t_cold_s": t_cold, "t_warm_s": t_warm, "speedup": restart_speedup,
        **store_stats,
    }
    if store_stats["corrupt"]:
        failures.append(f"corrupt disk entries: {store_stats}")
    if restart_speedup < restart_gate:
        failures.append(
            f"warm restart speedup {restart_speedup:.2f}x < gate {restart_gate}x"
        )

    ref_stats, comp_stats, t_r, t_c = run_replay_pair(opts.seed)
    if comp_stats != ref_stats:
        failures.append("cache replay stats diverge")
    metrics["cache_replay"] = {
        "t_reference_s": t_r, "t_compiled_s": t_c,
        "speedup": t_r / max(t_c, 1e-9),
    }
    metrics["ok"] = not failures
    metrics["failures"] = failures

    if opts.json:
        opts.out.mkdir(parents=True, exist_ok=True)
        path = opts.out / "c21_compiled_core.main.json"
        path.write_text(json.dumps(metrics, indent=1) + "\n")
        print(f"wrote {path}")
    print(
        f"campaign {campaign_speedup:.2f}x, restart {restart_speedup:.2f}x, "
        f"replay {metrics['cache_replay']['speedup']:.2f}x "
        f"({metrics['mode']}, gate {campaign_gate}x)"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
