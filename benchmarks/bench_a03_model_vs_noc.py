"""Ablation A3: how optimistic is the pure F&M cost model under contention?

The model charges transport by distance alone; a real fabric arbitrates.
Dally's claim that the model yields "predictable execution time" holds
only if the gap to a contended network stays small for reasonable
mappings.  The grid machine's ``with_noc=True`` mode routes every mapped
message through the XY mesh (one message per link per cycle) and reports
the queueing delay the idealized model did not see.

Sweep: workloads x placements; reported: total model transit vs NoC extra
cycles.  Expectation (asserted): well-spread owner-computes mappings see
single-digit-percent inflation, while deliberately convergent mappings
(everything funnelled to one PE) see large inflation — the model is
predictable exactly when the mapping respects the fabric.
"""


from repro.algorithms.stencil import owner_computes_mapping, stencil_graph
from repro.analysis.report import Table
from repro.core.default_mapper import schedule_asap
from repro.core.function import DataflowGraph
from repro.core.idioms import build_reduce
from repro.core.mapping import GridSpec
from repro.machines.grid import GridMachine

GRID = GridSpec(8, 1)


def convergent_graph(n: int) -> tuple[DataflowGraph, "object"]:
    """n values produced on one PE at the same cycle, consumed far away —
    the burst pattern that maximizes link contention."""
    g = DataflowGraph()
    srcs = [g.const(i) for i in range(n)]
    sinks = []
    for k, s in enumerate(srcs):
        sinks.append(g.op("copy", s, index=(k,)))
        g.mark_output(sinks[-1], ("o", k))
    place = {nid: (1, 0) for nid in srcs}
    for k, s in enumerate(sinks):
        place[s] = (6, 0)
    m = schedule_asap(g, GRID, lambda nid: place.get(nid, (0, 0)),
                      inputs_offchip=False)
    return g, m


def measure():
    mach = GridMachine(GRID)
    rows = []

    sg = stencil_graph(32, 3)
    sm = owner_computes_mapping(sg, 32, 8, GRID, inputs_offchip=False)
    res = mach.run(sg, sm, {"x": {(i,): 1 for i in range(32)}}, with_noc=True)
    rows.append(("stencil 32x3, owner", res.cycles, res.noc_extra_cycles))

    idiom = build_reduce(64, 8, GRID)
    res = mach.run(idiom.graph, idiom.mapping,
                   {"A": {(i,): 1 for i in range(64)}}, with_noc=True)
    rows.append(("reduce 64, tree", res.cycles, res.noc_extra_cycles))

    cg, cm = convergent_graph(12)
    res = mach.run(cg, cm, {}, with_noc=True)
    rows.append(("convergent burst 12", res.cycles, res.noc_extra_cycles))
    return rows


def test_bench_model_vs_noc(benchmark, record_table):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    tbl = Table(
        "A3: idealized model vs contended NoC (extra queueing cycles)",
        ["workload / mapping", "model cycles", "NoC extra", "inflation"],
    )
    by_name = {}
    for name, cycles, extra in rows:
        tbl.add_row(name, cycles, extra, f"{extra / cycles:.1%}")
        by_name[name] = (cycles, extra)
    # spread mappings: the model is honest (small absolute queueing)
    assert by_name["stencil 32x3, owner"][1] <= 0.1 * by_name["stencil 32x3, owner"][0]
    assert by_name["reduce 64, tree"][1] <= 0.1 * by_name["reduce 64, tree"][0]
    # convergent burst: the model misses real serialization
    assert by_name["convergent burst 12"][1] > 0
    record_table("a03_model_vs_noc", tbl)
