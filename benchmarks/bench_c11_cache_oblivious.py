"""Claim C11: "it is easy to add a one level cache to the RAM model ...
When algorithms developed in this model satisfy a property of being cache
oblivious, they will also work effectively on a multilevel cache"
(Section 2).

Workload: n x n matmul as naive (ijk), cache-aware blocked (needs to know
M), and cache-oblivious recursive (knows nothing).  The bench reports:

*  one-level (M, B) miss counts — who wins and by how much;
*  the M-sweep: the oblivious algorithm stays within a constant factor of
   the per-M tuned blocked algorithm at *every* cache size, without
   retuning — the claim;
*  the multilevel run: the oblivious trace filters well at L1, L2, and L3
   simultaneously.
"""


from repro.algorithms.matmul import trace_blocked, trace_naive, trace_recursive
from repro.analysis.report import Table
from repro.models.cache import (
    HierarchySpec,
    bound_matmul_oblivious,
    ideal_cache_misses,
    multilevel_misses,
)

N = 32
BLOCK_WORDS = 4


def best_blocked(m_words: int) -> tuple[int, int]:
    """Tune the aware algorithm for this cache size; return (bs, misses)."""
    best = None
    for bs in (4, 8, 16):
        q = ideal_cache_misses(trace_blocked(N, bs), m_words, BLOCK_WORDS)
        if best is None or q < best[1]:
            best = (bs, q)
    return best


def m_sweep():
    rows = []
    for m_words in (64, 128, 256, 512):
        q_naive = ideal_cache_misses(trace_naive(N), m_words, BLOCK_WORDS)
        bs, q_aware = best_blocked(m_words)
        q_obl = ideal_cache_misses(trace_recursive(N, 2), m_words, BLOCK_WORDS)
        shape = bound_matmul_oblivious(N, m_words, BLOCK_WORDS)
        rows.append((m_words, q_naive, bs, q_aware, q_obl, shape))
    return rows


def test_bench_one_level_sweep(benchmark, record_table):
    rows = benchmark.pedantic(m_sweep, rounds=1, iterations=1)
    tbl = Table(
        f"C11a: {N}x{N} matmul misses on a one-level (M, B={BLOCK_WORDS}) cache",
        ["M (words)", "naive", "best aware bs", "aware (tuned)",
         "oblivious (untuned)", "theory shape"],
    )
    for m_words, qn, bs, qa, qo, shape in rows:
        tbl.add_row(m_words, qn, bs, qa, qo, shape)
        assert qo < qn, f"M={m_words}: oblivious not beating naive"
        assert qo <= 3 * qa, f"M={m_words}: oblivious >3x off tuned aware"
    # misses shrink as the cache grows
    q_by_m = [r[4] for r in rows]
    assert q_by_m == sorted(q_by_m, reverse=True)
    record_table("c11_one_level", tbl)


def test_bench_multilevel(benchmark, record_table):
    """The claim itself: the same untouched oblivious trace behaves on a
    three-level hierarchy."""
    specs = (
        HierarchySpec(64, BLOCK_WORDS, 0.5, "L1"),
        HierarchySpec(256, BLOCK_WORDS, 2.0, "L2"),
        HierarchySpec(1024, BLOCK_WORDS, 10.0, "L3"),
    )

    def run():
        out = {}
        for name, trace_fn in (
            ("naive", lambda: trace_naive(N)),
            ("oblivious", lambda: trace_recursive(N, 2)),
        ):
            out[name] = multilevel_misses(trace_fn(), specs)
        return out

    misses = benchmark.pedantic(run, rounds=1, iterations=1)
    tbl = Table(
        f"C11b: {N}x{N} matmul on a 3-level hierarchy (misses per level)",
        ["algorithm", "L1", "L2", "L3"],
    )
    for name, ms in misses.items():
        tbl.add_row(name, *ms)
    for level in range(3):
        assert misses["oblivious"][level] <= misses["naive"][level], (
            f"oblivious loses at level {level}"
        )
    record_table("c11_multilevel", tbl)


def test_bench_block_size_ablation(benchmark, record_table):
    """Ablation: the aware algorithm's cliff — a block size tuned for one
    M thrashes at a smaller M, while the oblivious trace never cliffs."""

    def run():
        rows = []
        for m_words in (64, 256):
            q16 = ideal_cache_misses(trace_blocked(N, 16), m_words, BLOCK_WORDS)
            q4 = ideal_cache_misses(trace_blocked(N, 4), m_words, BLOCK_WORDS)
            qo = ideal_cache_misses(trace_recursive(N, 2), m_words, BLOCK_WORDS)
            rows.append((m_words, q16, q4, qo))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    tbl = Table(
        "C11 ablation: fixed block sizes vs oblivious across cache sizes",
        ["M (words)", "blocked bs=16", "blocked bs=4", "oblivious"],
    )
    for row in rows:
        tbl.add_row(*row)
    small_m = rows[0]
    # bs=16 was tuned for the big cache; at M=64 it pays
    assert small_m[1] > small_m[3]
    record_table("c11_block_ablation", tbl)
