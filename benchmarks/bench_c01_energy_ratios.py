"""Claims C1-C4: the 5 nm energy/delay ratios of Dally's statement.

Paper (Section 3): an add is 0.5 fJ/bit and 200 ps; on-chip wire is
80 fJ/bit-mm and 800 ps/mm; moving an add's result 1 mm costs 160x the
add; across the diagonal of an 800 mm^2 GPU, 4500x; off-chip is an order
of magnitude more again (50,000x an add).

The bench computes every ratio from the :class:`Technology` model and a
mapped two-node program on the grid machine (so the ratios demonstrably
flow through the whole cost stack, not just the parameter table).
"""


from repro.analysis.claims import CLAIMS
from repro.analysis.report import Table
from repro.core.cost import evaluate_cost
from repro.core.function import DataflowGraph
from repro.core.mapping import GridSpec, Mapping
from repro.machines.technology import TECH_5NM


def measured_ratios() -> dict[str, float]:
    t = TECH_5NM
    out = {
        "C1": t.transport_vs_add_ratio(1.0),
        "C2": t.diagonal_vs_add_ratio(),
        "C3": t.offchip_vs_add_ratio(),
        "C3b": t.offchip_vs_diagonal_ratio(),
        "C4a": t.add_energy_fj_per_bit,
        "C4b": t.add_latency_ps,
        "C4c": t.wire_energy_fj_per_bit_mm,
        "C4d": t.wire_latency_ps_per_mm,
    }
    return out


def end_to_end_1mm_ratio() -> float:
    """The 160x ratio reproduced through graph -> mapping -> cost."""
    g = DataflowGraph()
    a = g.const(1)
    b = g.const(2)
    s = g.op("+", a, b)
    c = g.op("copy", s)  # one grid hop away
    g.mark_output(c, "o")
    grid = GridSpec(2, 1)
    m = Mapping(g.n_nodes)
    m.set(a, (0, 0), 0)
    m.set(b, (0, 0), 0)
    m.set(s, (0, 0), 1)
    m.set(c, (1, 0), 2 + grid.tech.hop_cycles())
    cost = evaluate_cost(g, m, grid)
    # the s -> c edge is the 1 mm transport; s itself is the add
    return cost.energy_onchip_fj / TECH_5NM.add_energy_word_fj()


def test_bench_energy_ratios(benchmark, record_table):
    ratios = benchmark(measured_ratios)

    tbl = Table(
        "C1-C4: technology ratios (paper Section 3 vs model)",
        ["claim", "paper says", "model measures", "ok"],
    )
    for cid in ("C1", "C2", "C3", "C3b", "C4a", "C4b", "C4c", "C4d"):
        claim = CLAIMS[cid]
        got = ratios[cid]
        assert claim.check(got), f"{cid}: measured {got}, expected {claim.expected}"
        tbl.add_row(cid, claim.expected, got, claim.check(got))

    e2e = end_to_end_1mm_ratio()
    assert CLAIMS["C1"].check(e2e)
    tbl.add_row("C1 (via grid run)", CLAIMS["C1"].expected, e2e, True)
    record_table("c01_energy_ratios", tbl)


def test_bench_ratio_across_technology_nodes(benchmark, record_table):
    """Figure-style series: the transport/compute gap widens every node —
    the physical trend behind "modern computing engines are largely
    communication limited".  Only the 5 nm point is the paper's; earlier
    nodes are calibration-grade stand-ins (see machines/technology.py)."""
    from repro.machines.technology import TECH_NODES

    def series():
        return [
            (t.name, t.transport_vs_add_ratio(1.0), t.offchip_vs_add_ratio())
            for t in TECH_NODES
        ]

    rows = benchmark(series)
    tbl = Table(
        "transport-vs-add ratio by technology node (1 mm wire)",
        ["node", "1mm wire / add", "off-chip / add"],
    )
    prev = 0.0
    for name, ratio, off in rows:
        tbl.add_row(name, ratio, off)
        assert ratio > prev  # the gap grows as nodes shrink
        prev = ratio
    record_table("c01_node_series", tbl)


def test_bench_ratio_scaling_with_distance(benchmark, record_table):
    """Figure-style series: transport/add ratio vs distance, 0.1..28.3 mm."""

    def series():
        return [
            (d, TECH_5NM.transport_vs_add_ratio(d))
            for d in (0.1, 0.5, 1.0, 2.0, 5.0, 10.0, TECH_5NM.chip_diagonal_mm)
        ]

    rows = benchmark(series)
    tbl = Table("transport-vs-add ratio by distance (mm)", ["mm", "ratio"])
    prev = 0.0
    for d, r in rows:
        tbl.add_row(round(d, 2), r)
        assert r > prev  # strictly increasing in distance
        prev = r
    record_table("c01_distance_series", tbl)
