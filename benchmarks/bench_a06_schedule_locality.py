"""Ablation A6: work-depth's locality extension — schedules Brent can't
tell apart differ 10x in cache misses.

Section 2 claims the work-depth model has "reasonably simple extensions
that support accounting for locality".  The extension here: per-worker
private caches replayed under the actual schedule.  Workload: independent
task chains, each streaming its own working set.  Every scheduler achieves
the same Brent-optimal makespan; the *order* within workers differs:

*  greedy FIFO interleaves chains breadth-first — each task returns to an
   evicted working set (the locality-oblivious scheduler);
*  randomized work stealing runs chains depth-first per worker — each
   working set is paid for ~once (the locality the Cilk-style discipline
   preserves, here measured rather than asserted).
"""


from repro.analysis.report import Table
from repro.analysis.schedule_locality import chain_workload, replay_schedule
from repro.runtime.scheduler import greedy_schedule, work_stealing_schedule

CHAINS, LEN, FOOTPRINT = 8, 16, 16


def sweep():
    dag, addrs = chain_workload(CHAINS, LEN, block_words_per_chain=FOOTPRINT)
    rows = []
    for p in (1, 2, 4, 8):
        g = greedy_schedule(dag, p)
        ws = work_stealing_schedule(dag, p, seed=0)
        rg = replay_schedule(dag, g, addrs, cache_words=64)
        rw = replay_schedule(dag, ws, addrs, cache_words=64)
        rows.append((p, g.length, rg.misses, ws.length, rw.misses))
    return rows


def test_bench_schedule_locality(benchmark, record_table):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    tbl = Table(
        f"A6: {CHAINS} chains x {LEN} tasks, {FOOTPRINT}-word working sets, "
        "64-word private caches",
        ["P", "greedy T_P", "greedy misses", "stealing T_P",
         "stealing misses"],
    )
    cold = CHAINS * FOOTPRINT  # the unavoidable cold misses
    for p, gt, gm, wt, wm in rows:
        tbl.add_row(p, gt, gm, wt, wm)
        assert wm >= cold                 # nobody beats cold misses
        assert wm <= 4 * cold             # stealing pays ~once per chain
    # at p=1 the FIFO interleave thrashes: every task re-faults its set
    p1 = rows[0]
    assert p1[2] == CHAINS * LEN * FOOTPRINT
    assert p1[4] * 8 <= p1[2]
    # makespans match at p=1: Brent sees no difference at all
    assert p1[1] == p1[3]
    record_table("a06_schedule_locality", tbl)
