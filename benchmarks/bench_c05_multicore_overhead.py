"""Claim C5: "the energy overhead of an ADD instruction is 10,000x times
more than the energy required to do the add" (Section 3).

The bench executes the paper's own Section-2 program — summing a sequence
on the RAM — on the conventional multicore model and reports energy by
component.  The per-instruction ratio reproduces the stated 10,000x; the
whole-program ratio is *worse* (loads, branches, and off-chip traffic are
pure overhead for a single useful add per element), which is the point of
Dally's argument.
"""


from repro.analysis.claims import CLAIMS
from repro.analysis.report import Table
from repro.machines.multicore import MulticoreMachine
from repro.machines.technology import TECH_5NM
from repro.models.ram import sum_program


def run_sum(n: int):
    mc = MulticoreMachine()
    res, ram = mc.run_single(sum_program(), {1: 0, 2: n}, {0: [1] * n})
    assert ram.registers[0] == n
    return res


def test_bench_instruction_overhead(benchmark, record_table):
    res = benchmark(run_sum, 512)

    per_instr_ratio = (
        TECH_5NM.instruction_energy_word_fj() / TECH_5NM.add_energy_word_fj() - 1
    )
    assert CLAIMS["C5"].check(per_instr_ratio)
    assert res.overhead_ratio >= CLAIMS["C5"].expected

    tbl = Table(
        "C5: multicore energy accounting, sum of 512 elements",
        ["component", "energy (fJ)", "share"],
    )
    total = res.energy_total_fj
    for label, e in (
        ("instruction overhead", res.energy_instruction_overhead_fj),
        ("useful ALU work", res.energy_useful_alu_fj),
        ("memory movement", res.energy_memory_fj),
    ):
        tbl.add_row(label, e, f"{e / total:.2%}")
    tbl.add_row("TOTAL", total, "100%")

    tbl2 = Table(
        "C5: overhead ratios (paper: 10,000x per ADD instruction)",
        ["quantity", "paper", "measured"],
    )
    tbl2.add_row("per-instruction overhead / add", 10_000, per_instr_ratio)
    tbl2.add_row("whole-program energy / useful add energy", ">= 10,000",
                 res.overhead_ratio)
    record_table("c05_multicore_overhead", tbl, tbl2)


def test_bench_overhead_vs_problem_size(benchmark, record_table):
    """Series: the ratio is scale-invariant — it's architectural, not a
    startup effect."""

    def sweep():
        return [(n, run_sum(n).overhead_ratio) for n in (64, 128, 256)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    tbl = Table("C5: overhead ratio vs n", ["n", "total/useful ratio"])
    ratios = []
    for n, r in rows:
        tbl.add_row(n, r)
        ratios.append(r)
    spread = max(ratios) / min(ratios)
    assert spread < 1.2  # flat within 20%
    record_table("c05_size_series", tbl)
