"""Ablation A1: systolic forwarding vs broadcast — Section 3's "systolic
arrays" prior art, expressed and measured inside the F&M model.

The same matmul function is mapped output-stationary on an n x n grid two
ways: MACs reading operands *directly* (broadcast — each A element's wires
total Theta(n^2) mm) versus explicit one-hop *forwarding* chains (systolic
— Theta(n) mm per element, paid for with copy ops and a longer schedule).
The bench sweeps n and reports the energy/time crossover the model
predicts; claim-wise this substantiates the paper's framing of systolic
dataflows as communication-minimizing mappings.
"""

import numpy as np
import pytest

from repro.algorithms.matmul_fm import matmul_graph, owner_mapping, verify_against
from repro.analysis.report import Table
from repro.core.cost import evaluate_cost
from repro.core.legality import check_legality
from repro.core.mapping import GridSpec


def sweep():
    rows = []
    rng = np.random.default_rng(0)
    for n in (2, 4, 6, 8):
        grid = GridSpec(n, n)
        a = rng.integers(0, 9, size=(n, n))
        b = rng.integers(0, 9, size=(n, n))
        per_variant = {}
        for systolic in (False, True):
            g = matmul_graph(n, systolic=systolic)
            assert verify_against(g, a, b)
            m = owner_mapping(g, n, grid)
            assert check_legality(g, m, grid).ok
            per_variant[systolic] = evaluate_cost(g, m, grid)
        rows.append((n, per_variant[False], per_variant[True]))
    return rows


def test_bench_systolic_ablation(benchmark, record_table):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    tbl = Table(
        "A1: broadcast vs systolic matmul on an n x n grid (owner mapping)",
        ["n", "variant", "cycles", "onchip wire fJ", "compute fJ",
         "wire ratio (bc/sys)"],
    )
    prev_ratio = 0.0
    for n, bc, sy in rows:
        ratio = bc.energy_onchip_fj / max(sy.energy_onchip_fj, 1e-9)
        tbl.add_row(n, "broadcast", bc.cycles, bc.energy_onchip_fj,
                    bc.energy_compute_fj, "")
        tbl.add_row(n, "systolic", sy.cycles, sy.energy_onchip_fj,
                    sy.energy_compute_fj, round(ratio, 2))
        if n >= 4:
            assert ratio > 1.5  # forwarding wins on wires
            assert ratio >= prev_ratio  # and the win grows with n
            prev_ratio = ratio
        assert sy.energy_compute_fj == pytest.approx(bc.energy_compute_fj)
    record_table("a01_systolic", tbl)
