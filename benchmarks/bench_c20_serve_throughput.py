"""Claim C20: the batched evaluation service scales search-sweep
throughput >= 2x from 1 shard to 4 shards — with served results
bit-identical to direct library calls (differential oracle enforced).

Where the scaling comes from matters on a one-core CI box: shards are
**cache** scale-out first, CPU scale-out second.  Each shard holds a
fixed memo budget (``shard_cache_entries``), and the batcher routes each
(workload, machine) key to the same shard every time (content-hash
affinity).  The request mix below cycles through more distinct keys than
one shard's budget can hold — the LRU worst case, every round evicts
what the next round needs — while four shards' *aggregate* budget keeps
every key's entries warm.  So one shard re-evaluates every sweep and
four shards serve lookups, a gap far beyond 2x; on a multicore host CPU
parallelism adds on top.  The differential oracle then checks a served
row set per key against the direct :mod:`repro.api` call, float for
float: scaling never buys away exactness.
"""

from __future__ import annotations

import time

from repro import api
from repro.analysis.report import Table
from repro.serve import EvaluationServer, Request
from repro.serve.protocol import search_results_from_rows
from repro.testing import assert_search_equivalent

MACHINE = [8, 1]
#: 16 distinct sweep keys x 7 memo entries each = 112 live entries; a
#: 64-entry shard budget thrashes alone but holds its ~1/4 slice warm.
KEYS = [("stencil", {"n": n, "steps": 2}) for n in range(8, 40, 2)]
CACHE_ENTRIES = 64
ROUNDS = 6


def _requests():
    return [
        Request("search", {"workload": {"name": name, "params": params},
                           "machine": MACHINE})
        for name, params in KEYS
    ]


def _drive(n_shards: int) -> tuple[float, int, list]:
    """Closed-loop rounds over the key mix; returns (steady-state seconds,
    requests served, last round's responses)."""
    # disk_cache off: the shared on-disk tier would let the 1-shard run
    # pre-warm the 4-shard run, corrupting the scaling measurement
    with EvaluationServer(
        n_shards=n_shards,
        shard_cache_entries=CACHE_ENTRIES,
        max_batch=4,
        tick_s=0.001,
        disk_cache=False,
    ) as srv:
        last = []
        t_measured = 0.0
        served = 0
        for r in range(ROUNDS):
            t0 = time.perf_counter()
            tickets = [srv.submit(req) for req in _requests()]
            resps = [t.wait(300) for t in tickets]
            dt = time.perf_counter() - t0
            assert all(x is not None and x.ok for x in resps), [
                (x.code, x.detail) for x in resps if x is not None
            ]
            if r > 0:  # round 0 is the cold warm-up for every config
                t_measured += dt
                served += len(resps)
            last = resps
        return t_measured, served, last


def test_bench_shard_scaling_with_oracle_identity(benchmark, record_table):
    def measure():
        t1, n1, last1 = _drive(1)
        t4, n4, last4 = _drive(4)
        return (t1, n1, last1), (t4, n4, last4)

    (t1, n1, last1), (t4, n4, last4) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    tput1 = n1 / t1
    tput4 = n4 / t4
    scaling = tput4 / tput1

    # exactness: every key's served rows equal the direct library call
    for (name, params), resp in zip(KEYS, last4):
        direct = api.search(api.WorkloadSpec.of(name, **params), MACHINE)
        assert_search_equivalent(
            search_results_from_rows(resp.result["rows"]),
            direct,
            context=f"c20/{name}-{params['n']}",
        )

    tbl = Table(
        "C20: serve throughput, 1 -> 4 shards "
        f"({len(KEYS)} sweep keys, {CACHE_ENTRIES}-entry shard cache)",
        ["shards", "steady-state req/s", "scaling", "why"],
    )
    tbl.add_row("1", round(tput1, 1), 1.0, "key set thrashes one LRU budget")
    tbl.add_row(
        "4", round(tput4, 1), round(scaling, 2),
        "affinity keeps each slice warm",
    )
    record_table("c20_serve_scaling", tbl, tolerances={"scaling_min": 2.0})
    assert scaling >= 2.0, (
        f"4 shards only {scaling:.2f}x over 1 shard "
        f"({tput1:.1f} -> {tput4:.1f} req/s)"
    )
