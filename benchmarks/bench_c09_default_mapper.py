"""Claim C9: "Programmers that don't want to bother with mapping can use a
default mapper - with results no worse than with today's abstractions"
(Section 3).

Operationalization: across a workload suite (map, reduce, scan, stencil,
FFT), the default mapper's schedule must be

*  never slower than the fully serial mapping ("today's abstraction" on
   one core), and
*  within a bounded factor of the best mapping the structured sweep finds
   (how much a careful mapping still buys — also reported).
"""


from repro.algorithms.fft import fft_graph
from repro.algorithms.stencil import stencil_graph
from repro.analysis.report import Table
from repro.core.cost import evaluate_cost
from repro.core.default_mapper import default_mapping, serial_mapping
from repro.core.idioms import build_map, build_reduce, build_scan
from repro.core.legality import check_legality
from repro.core.mapping import GridSpec
from repro.core.search import FigureOfMerit, sweep_placements

GRID = GridSpec(8, 1)


def workloads():
    return {
        "map-64": build_map(64, 8, GRID).graph,
        "reduce-64": build_reduce(64, 8, GRID).graph,
        "scan-64": build_scan(64, 8, GRID).graph,
        "stencil-32x3": stencil_graph(32, 3),
        "fft-32": fft_graph(32, "dit"),
    }


def evaluate_suite():
    rows = []
    for name, g in workloads().items():
        dm = default_mapping(g, GRID)
        assert check_legality(g, dm, GRID).ok
        t_default = evaluate_cost(g, dm, GRID).cycles
        t_serial = evaluate_cost(g, serial_mapping(g, GRID), GRID).cycles
        best = sweep_placements(g, GRID, FigureOfMerit.fastest())[0]
        rows.append((name, t_serial, t_default, best.cost.cycles, best.label))
    return rows


def test_bench_default_mapper_no_worse(benchmark, record_table):
    rows = benchmark.pedantic(evaluate_suite, rounds=1, iterations=1)
    tbl = Table(
        "C9: default mapper vs serial ('today') vs best swept mapping",
        ["workload", "serial cycles", "default cycles", "best cycles",
         "best label"],
    )
    for name, ts, td, tb, label in rows:
        tbl.add_row(name, ts, td, tb, label)
        assert td <= ts, f"{name}: default mapper slower than serial"
        assert td <= 4 * tb, f"{name}: default mapper > 4x off the swept best"
    record_table("c09_default_mapper", tbl)
