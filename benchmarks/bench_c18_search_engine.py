"""Claim C18: the fast search engine (memoization + incremental move
re-scoring + parallel fan-out) accelerates the mapping search by >= 3x
while producing results *identical* to the reference path.

The workload is the realistic search loop: a multi-FoM structured sweep
(time, energy, EDP over the same graph — memoization turns the repeated
schedule+cost work into lookups) plus a simulated-annealing run (the
incremental scorer re-prices only the moved node's edges and skips the
liveness sweep).  Equality is not eyeballed: the differential oracle from
``repro.testing`` checks every row, mapping, and CostReport float.

The campaign drives the :mod:`repro.api` facade (with an explicit
``engine=``) — the same calls the serve shards execute with their warm
engines, so this bench also certifies the path the service takes.
"""

import time

from repro import api
from repro.analysis.report import Table
from repro.core.memo import clear_global_caches, global_cache
from repro.core.search import SearchEngine
from repro.testing import assert_search_equivalent

MACHINE = api.MachineSpec(8, 1)
STENCIL_32x3 = api.WorkloadSpec.of("stencil", n=32, steps=3)

#: the true reference path — with the compiled backend now the session
#: default, ``engine=None`` would silently measure compiled-vs-fast.
REFERENCE_ENGINE = SearchEngine()
FOMS = [
    ("time", {"time": 1}),
    ("energy", {"energy": 1}),
    ("edp", {"time": 1, "energy": 1}),
]
ANNEAL_STEPS = 250


def search_campaign(spec, engine, seed):
    """The full loop a user actually runs: sweep under several FoMs, then
    anneal from the best region.  Returns (sweep rows per FoM, anneal)."""
    sweeps = {
        name: api.search(spec, MACHINE, fom=fom, engine=engine)
        for name, fom in FOMS
    }
    annealed = api.search(
        spec, MACHINE, fom=FOMS[-1][1], method="anneal",
        steps=ANNEAL_STEPS, seed=seed, engine=engine,
    )[0]
    return sweeps, annealed


def test_bench_engine_speedup_with_identical_results(
    benchmark, record_table, bench_opts
):
    # n_workers=1: this box may be single-core, so the measured win is
    # memoization + incremental scoring; parallel equality is covered below.
    fast_engine = SearchEngine(memoize=True, incremental=True, n_workers=1)
    seed = bench_opts.seed

    def measure():
        clear_global_caches()
        t0 = time.perf_counter()
        ref = search_campaign(STENCIL_32x3, REFERENCE_ENGINE, seed)
        t_ref = time.perf_counter() - t0
        clear_global_caches()
        t0 = time.perf_counter()
        fast = search_campaign(STENCIL_32x3, fast_engine, seed)
        t_fast = time.perf_counter() - t0
        return ref, fast, t_ref, t_fast

    ref, fast, t_ref, t_fast = benchmark.pedantic(measure, rounds=1, iterations=1)

    (ref_sweeps, ref_anneal), (fast_sweeps, fast_anneal) = ref[:2], fast[:2]
    for name, _fom in FOMS:
        assert_search_equivalent(
            fast_sweeps[name], ref_sweeps[name], context=f"sweep/{name}"
        )
    assert_search_equivalent(fast_anneal, ref_anneal, context="anneal")

    cache = global_cache("search")
    speedup = t_ref / t_fast
    tbl = Table(
        "C18: search engine — reference vs fast (stencil 32x3, 3 FoMs + anneal)",
        ["path", "wall time s", "speedup", "memo hit rate"],
    )
    tbl.add_row("reference", round(t_ref, 3), 1.0, "-")
    tbl.add_row(
        "fast (memo+incremental)",
        round(t_fast, 3),
        round(speedup, 2),
        f"{cache.stats.hit_rate:.1%}",
    )
    record_table("c18_engine", tbl)
    assert cache.stats.hits > 0, "the campaign must actually reuse work"
    assert speedup >= 3.0, f"fast engine only {speedup:.2f}x over reference"


def test_bench_parallel_driver_is_deterministic(
    benchmark, record_table, bench_opts
):
    """The multiprocessing fan-out returns byte-identical results to the
    serial sweep — merging is by (FoM, label), never arrival order."""
    spec = api.WorkloadSpec.of("stencil", n=24, steps=2)
    workers = max(2, bench_opts.workers)

    def measure():
        clear_global_caches()
        ref = api.search(spec, MACHINE, engine=REFERENCE_ENGINE)
        par = api.search(
            spec, MACHINE,
            engine=SearchEngine(parallel=True, n_workers=workers),
        )
        return ref, par

    ref, par = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert_search_equivalent(par, ref, context="parallel sweep")
    tbl = Table(
        f"C18b: parallel sweep determinism (stencil 24x2, {workers} workers)",
        ["path", "candidates", "best", "best FoM"],
    )
    tbl.add_row("serial reference", len(ref), ref[0].label, ref[0].fom)
    tbl.add_row(f"{workers}-worker pool", len(par), par[0].label, par[0].fom)
    record_table("c18_parallel", tbl)
