"""Claim C18: the fast search engine (memoization + incremental move
re-scoring + parallel fan-out) accelerates the mapping search by >= 3x
while producing results *identical* to the reference path.

The workload is the realistic search loop: a multi-FoM structured sweep
(time, energy, EDP over the same graph — memoization turns the repeated
schedule+cost work into lookups) plus a simulated-annealing run (the
incremental scorer re-prices only the moved node's edges and skips the
liveness sweep).  Equality is not eyeballed: the differential oracle from
``repro.testing`` checks every row, mapping, and CostReport float.
"""

import time

from repro.algorithms.stencil import stencil_graph
from repro.analysis.report import Table
from repro.core.mapping import GridSpec
from repro.core.memo import clear_global_caches, global_cache
from repro.core.search import (
    FigureOfMerit,
    SearchEngine,
    anneal,
    sweep_placements,
)
from repro.testing import assert_search_equivalent

GRID = GridSpec(8, 1)
FOMS = [
    ("time", FigureOfMerit.fastest()),
    ("energy", FigureOfMerit.lowest_energy()),
    ("edp", FigureOfMerit.edp()),
]
ANNEAL_STEPS = 250


def search_campaign(graph, engine):
    """The full loop a user actually runs: sweep under several FoMs, then
    anneal from the best region.  Returns (sweep rows per FoM, anneal)."""
    sweeps = {
        name: sweep_placements(graph, GRID, fom, engine=engine)
        for name, fom in FOMS
    }
    annealed = anneal(
        graph, GRID, FigureOfMerit.edp(), steps=ANNEAL_STEPS, seed=1, engine=engine
    )
    return sweeps, annealed


def test_bench_engine_speedup_with_identical_results(benchmark, record_table):
    g = stencil_graph(32, 3)
    # n_workers=1: this box may be single-core, so the measured win is
    # memoization + incremental scoring; parallel equality is covered below.
    fast_engine = SearchEngine(memoize=True, incremental=True, n_workers=1)

    def measure():
        clear_global_caches()
        t0 = time.perf_counter()
        ref = search_campaign(g, None)
        t_ref = time.perf_counter() - t0
        clear_global_caches()
        t0 = time.perf_counter()
        fast = search_campaign(g, fast_engine)
        t_fast = time.perf_counter() - t0
        return ref, fast, t_ref, t_fast

    ref, fast, t_ref, t_fast = benchmark.pedantic(measure, rounds=1, iterations=1)

    (ref_sweeps, ref_anneal), (fast_sweeps, fast_anneal) = ref[:2], fast[:2]
    for name, _fom in FOMS:
        assert_search_equivalent(
            fast_sweeps[name], ref_sweeps[name], context=f"sweep/{name}"
        )
    assert_search_equivalent(fast_anneal, ref_anneal, context="anneal")

    cache = global_cache("search")
    speedup = t_ref / t_fast
    tbl = Table(
        "C18: search engine — reference vs fast (stencil 32x3, 3 FoMs + anneal)",
        ["path", "wall time s", "speedup", "memo hit rate"],
    )
    tbl.add_row("reference", round(t_ref, 3), 1.0, "-")
    tbl.add_row(
        "fast (memo+incremental)",
        round(t_fast, 3),
        round(speedup, 2),
        f"{cache.stats.hit_rate:.1%}",
    )
    record_table("c18_engine", tbl)
    assert cache.stats.hits > 0, "the campaign must actually reuse work"
    assert speedup >= 3.0, f"fast engine only {speedup:.2f}x over reference"


def test_bench_parallel_driver_is_deterministic(benchmark, record_table):
    """The multiprocessing fan-out returns byte-identical results to the
    serial sweep — merging is by (FoM, label), never arrival order."""
    g = stencil_graph(24, 2)

    def measure():
        clear_global_caches()
        ref = sweep_placements(g, GRID)
        par = sweep_placements(
            g, GRID, engine=SearchEngine(parallel=True, n_workers=2)
        )
        return ref, par

    ref, par = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert_search_equivalent(par, ref, context="parallel sweep")
    tbl = Table(
        "C18b: parallel sweep determinism (stencil 24x2, 2 workers)",
        ["path", "candidates", "best", "best FoM"],
    )
    tbl.add_row("serial reference", len(ref), ref[0].label, ref[0].fom)
    tbl.add_row("2-worker pool", len(par), par[0].label, par[0].fom)
    record_table("c18_parallel", tbl)
