"""Claim C15 (Yelick, Section 6): "we need simpler mechanisms for
communication and synchronization ... Heavyweight communication mechanisms
that imply global or pairwise synchronization and require more data
aggregation to amortize overhead can consume precious fast memory
resources", and simpler primitives should be "universally useful across
algorithms and applications".

The bench runs four traffic patterns spanning the regular-to-irregular
spectrum through both primitive sets and reports time, messages, sync
events, and — the clause usually skipped — the fast-memory buffer cost of
the aggregation the heavyweight set needs to stay competitive.
"""


from repro.analysis.report import Table
from repro.machines.primitives import (
    OneSidedMachine,
    TwoSidedMachine,
    halo_exchange,
    random_updates,
    transpose,
    tree_reduce_traffic,
)

WORKLOADS = {
    "halo 16p x 10 steps": lambda: halo_exchange(16, 64, steps=10),
    "transpose 16p": lambda: transpose(16, 64),
    "tree reduce 16p": lambda: tree_reduce_traffic(16, 64),
    "random updates 16p, 2000": lambda: random_updates(16, 2000, seed=1),
}


def run_all():
    rows = []
    for name, gen in WORKLOADS.items():
        phases = gen()
        one = OneSidedMachine().run(phases)
        two = TwoSidedMachine().run(phases)
        rows.append((name, one, two))
    return rows


def test_bench_primitive_sets(benchmark, record_table):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    tbl = Table(
        "C15a: one-sided vs two-sided across the workload spectrum",
        ["workload", "machine", "time (cycles)", "messages", "sync events"],
    )
    for name, one, two in rows:
        tbl.add_row(name, one.machine, one.time_cycles, one.messages,
                    one.sync_events)
        tbl.add_row(name, two.machine, two.time_cycles, two.messages,
                    two.sync_events)
        # "universally useful": the simple primitives win on every workload
        assert one.time_cycles < two.time_cycles, name
    # ...and win biggest on the irregular one
    gains = {
        name: two.time_cycles / one.time_cycles for name, one, two in rows
    }
    assert gains["random updates 16p, 2000"] == max(gains.values())
    record_table("c15_primitives", tbl)


def test_bench_aggregation_memory_cost(benchmark, record_table):
    """The 'consume precious fast memory' clause: aggregation buys the
    heavyweight set time at the price of coalescing buffers."""

    def sweep():
        phases = random_updates(16, 2000, seed=1)
        one = OneSidedMachine().run(phases)
        rows = [("one-sided", 0, one.time_cycles, one.messages, 0)]
        for agg in (0, 32, 128, 512):
            rep = TwoSidedMachine(aggregate=agg).run(phases)
            rows.append(
                ("two-sided", agg, rep.time_cycles, rep.messages,
                 rep.buffer_words_peak)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    tbl = Table(
        "C15b: aggregation sweep on irregular updates",
        ["machine", "aggregate", "time (cycles)", "messages",
         "buffer words/proc"],
    )
    for row in rows:
        tbl.add_row(*row)
    two_rows = [r for r in rows if r[0] == "two-sided"]
    # aggregation monotonically trades messages for buffer space
    msgs = [r[3] for r in two_rows]
    bufs = [r[4] for r in two_rows]
    assert msgs[0] >= msgs[-1]
    assert bufs == sorted(bufs)
    # even the best aggregated point loses to plain one-sided
    one_time = rows[0][2]
    assert min(r[2] for r in two_rows) > one_time
    record_table("c15_aggregation", tbl)
