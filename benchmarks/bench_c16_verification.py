"""Claim C16 (Martonosi, Section 4): "a shift towards formal specifications
that support automated full-stack verification for correctness".

In this package the stack is functional spec -> mapping -> hardware
description, and the formal specification is the dataflow graph itself.
The bench demonstrates the automation on both sides:

*  **soundness**: clean lowerings of three workloads pass all five checks
   (coverage, occupancy, wiring, timing, functional equivalence under
   multiple execution orders);
*  **sensitivity**: single-fault mutants of the hardware (dropped wire,
   retimed entry, corrupted opcode, teleported entry, misdeclared wire)
   are all caught, with the failing check named — a mutation-coverage
   table, the standard evidence that a verifier actually verifies.
"""


from repro.algorithms.stencil import stencil_graph
from repro.analysis.report import Table
from repro.core.default_mapper import default_mapping
from repro.core.idioms import build_reduce, build_scan
from repro.core.lowering import lower
from repro.core.mapping import GridSpec
from repro.core.verify import MUTATION_KINDS, mutate_spec, verify_lowering

GRID = GridSpec(4, 1)
SEEDS = range(5)


def designs():
    out = {}
    r = build_reduce(16, 4, GRID)
    out["reduce-16"] = (r.graph, r.mapping)
    s = build_scan(12, 4, GRID)
    out["scan-12"] = (s.graph, s.mapping)
    g = stencil_graph(12, 2)
    out["stencil-12x2"] = (g, default_mapping(g, GRID))
    return out


def test_bench_clean_designs_verify(benchmark, record_table):
    def run():
        rows = []
        for name, (g, m) in designs().items():
            spec = lower(g, m, GRID)
            res = verify_lowering(g, m, spec, GRID,
                                  orders=("id", "reverse", "shuffle-3"))
            rows.append((name, res.ok, len(res.checks),
                         spec.n_pes, spec.total_rom_entries))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    tbl = Table(
        "C16a: full-stack verification of clean lowerings",
        ["design", "verified", "checks run", "PEs", "ROM entries"],
    )
    for row in rows:
        tbl.add_row(*row)
        assert row[1], f"{row[0]} failed verification"
    record_table("c16_clean", tbl)


def test_bench_mutation_coverage(benchmark, record_table):
    def run():
        g, m = designs()["reduce-16"]
        spec = lower(g, m, GRID)
        rows = []
        for kind in MUTATION_KINDS:
            caught = 0
            attempted = 0
            checks: set[str] = set()
            for seed in SEEDS:
                try:
                    mutant = mutate_spec(spec, kind, seed=seed)
                except ValueError:
                    continue
                attempted += 1
                res = verify_lowering(g, m, mutant, GRID)
                if not res.ok:
                    caught += 1
                    checks.update(c.name for c in res.failed())
            rows.append((kind, attempted, caught, ", ".join(sorted(checks))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    tbl = Table(
        "C16b: mutation coverage (5 seeds per fault kind)",
        ["fault kind", "mutants", "caught", "failing checks"],
    )
    total_attempted = total_caught = 0
    for kind, attempted, caught, checks in rows:
        tbl.add_row(kind, attempted, caught, checks or "-")
        total_attempted += attempted
        total_caught += caught
        assert attempted == 0 or caught == attempted, (
            f"{kind}: {attempted - caught} mutants slipped through"
        )
    tbl.add_row("TOTAL", total_attempted, total_caught, "")
    assert total_attempted >= 15
    record_table("c16_mutations", tbl)
