"""Claim C10: the work-depth model's "cost mappings down to the machine
level that reasonably capture real performance" (Section 2) — Brent's
theorem, measured.

For fork-join programs (reduce, scan, mergesort) the bench schedules the
recorded DAG on P workers with the greedy scheduler (must land inside
Brent's bounds) and with randomized work stealing (allowed W/P + O(D); the
constant is measured and reported).  An ablation sweeps the fork-join
grain size — the knob that trades span for spawn overhead.
"""

import numpy as np

from repro.algorithms.reduce_ import reduce_fork_join
from repro.algorithms.scan import scan_fork_join
from repro.algorithms.sort import mergesort_fork_join
from repro.analysis.brent import check_schedule
from repro.analysis.report import Table
from repro.runtime.scheduler import greedy_schedule, work_stealing_schedule

RNG = np.random.default_rng(7)
VALS = RNG.integers(0, 1000, size=256).tolist()


def programs():
    return {
        "reduce-256": reduce_fork_join(VALS),
        "scan-256": scan_fork_join(VALS),
        "mergesort-256": mergesort_fork_join(VALS),
    }


def brent_sweep():
    rows = []
    for name, res in programs().items():
        for p in (1, 2, 4, 8, 16):
            s = greedy_schedule(res.dag, p)
            chk = check_schedule(res.dag, s)
            ws = work_stealing_schedule(res.dag, p, seed=0)
            rows.append(
                (name, p, chk.work, chk.span, chk.lower, chk.t_p, chk.upper,
                 ws.length, chk.within_greedy_bounds)
            )
    return rows


def test_bench_brent_bounds(benchmark, record_table):
    rows = benchmark.pedantic(brent_sweep, rounds=1, iterations=1)
    tbl = Table(
        "C10: Brent's bounds vs measured schedules (greedy & stealing)",
        ["program", "P", "W", "D", "lower", "greedy T_P", "upper",
         "stealing T_P", "greedy in bounds"],
    )
    for row in rows:
        tbl.add_row(*row)
        *_a, t_steal, ok = row
        name, p, w, d, lo, tp, hi = row[:7]
        assert ok, f"{name} P={p}: greedy outside Brent bounds"
        assert t_steal <= w / p + 14 * d + 8, f"{name} P={p}: stealing too slow"
    record_table("c10_brent", tbl)


def test_bench_stealing_constant(benchmark, record_table):
    """Measure the O(D) constant of work stealing across seeds."""

    def measure():
        res = mergesort_fork_join(VALS)
        w, d = res.work, res.span
        out = []
        for p in (2, 4, 8):
            excess = []
            for seed in range(5):
                s = work_stealing_schedule(res.dag, p, seed=seed)
                excess.append((s.length - w / p) / d)
            out.append((p, w, d, min(excess), sum(excess) / len(excess),
                        max(excess)))
        return out

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    tbl = Table(
        "C10 ablation: work-stealing (T_P - W/P)/D constant over 5 seeds",
        ["P", "W", "D", "min", "mean", "max"],
    )
    for row in rows:
        tbl.add_row(row[0], row[1], row[2], round(row[3], 2),
                    round(row[4], 2), round(row[5], 2))
        assert row[5] < 14  # the constant stays modest
    record_table("c10_stealing_constant", tbl)


def test_bench_grain_ablation(benchmark, record_table):
    """Grain size: span/work tradeoff of the fork-join DSL."""

    def measure():
        out = []
        for grain in (1, 4, 16, 64):
            res = reduce_fork_join(VALS, grain=grain)
            t8 = greedy_schedule(res.dag, 8).length
            out.append((grain, res.work, res.span, res.dag.n_nodes, t8))
        return out

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    tbl = Table(
        "C10 ablation: fork-join grain (reduce of 256, greedy P=8)",
        ["grain", "work", "span", "dag nodes", "T_8"],
    )
    spans = []
    for row in rows:
        tbl.add_row(*row)
        spans.append(row[2])
    assert spans[0] <= spans[-1]  # coarser grain = longer span
    record_table("c10_grain", tbl)
