"""Ablation A4: PRAM depth vs physical distance — scan as the test case.

The PRAM says a p-way scan's cross-processor phase takes Theta(log p)
steps (Blelloch's tree) versus Theta(p) for a serial offset chain.  The
F&M model adds what the PRAM hides (Dally's core complaint): information
still has to *travel*.  On a 1-D row of PEs both algorithms need a signal
to cross ~p pitches, so the tree's log-depth advantage evaporates; on a
2-D grid (diameter ~ sqrt(p)) the tree's shorter critical path wins
decisively.

One algorithm family, two geometries, opposite verdicts — the panel's
disagreement in a single table.
"""

import itertools


from repro.analysis.report import Table
from repro.core.idioms import build_scan, build_scan_tree
from repro.core.legality import check_legality
from repro.core.mapping import GridSpec
from repro.machines.grid import GridMachine


CASES = [
    ("1-D row", GridSpec(16, 1), 64, 16),
    ("2-D 4x4", GridSpec(4, 4), 64, 16),
    ("2-D 8x8", GridSpec(8, 8), 256, 64),
]


def measure():
    rows = []
    for name, grid, n, p in CASES:
        vals = [(i * 5) % 9 + 1 for i in range(n)]
        want = list(itertools.accumulate(vals))
        entry = {"name": name, "p": p}
        for label, builder in (("chain", build_scan), ("tree", build_scan_tree)):
            idiom = builder(n, p, grid)
            assert check_legality(idiom.graph, idiom.mapping, grid).ok
            res = GridMachine(grid).run(
                idiom.graph, idiom.mapping,
                {"A": {(i,): v for i, v in enumerate(vals)}},
            )
            assert [res.outputs[("scan", i)] for i in range(n)] == want
            entry[label] = res.cycles
        rows.append(entry)
    return rows


def test_bench_scan_geometry(benchmark, record_table):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    tbl = Table(
        "A4: cross-PE scan, offset chain vs Blelloch tree, by grid geometry",
        ["geometry", "p", "chain cycles", "tree cycles", "tree/chain"],
    )
    by_name = {}
    for e in rows:
        ratio = e["tree"] / e["chain"]
        tbl.add_row(e["name"], e["p"], e["chain"], e["tree"], round(ratio, 2))
        by_name[e["name"]] = ratio
    # 1-D: no decisive tree win (physics caps the log-p advantage)
    assert by_name["1-D row"] > 0.75
    # 2-D at scale: tree wins big
    assert by_name["2-D 8x8"] < 0.5
    record_table("a04_scan_geometry", tbl)
