"""Claim C13: "many-core computing can offer improvement by 4-5 orders of
magnitude over single cores" and XMT's competitiveness on "as-is complete
PRAM algorithms", especially irregular ones (Section 5).

Workloads: level-synchronous BFS and label-propagation connectivity — the
irregular PRAM algorithms Vishkin's statement highlights.  The comparison:

*  **XMT** runs per-vertex virtual threads with the hardware prefix-sum;
   synchronization cost per level is the constant spawn overhead.
*  **Conventional multicore** runs the same per-level work with static
   chunking and a global barrier per level.

Measured: cycles vs TCU count (the scaling trend toward the claimed
orders of magnitude — the claim's full 10^4-10^5 needs the chip sizes the
panel talks about, so the bench reports the measured scaling exponent and
the extrapolation, and says so), plus the synchronization-cost gap that
makes irregular parallelism viable at all.
"""

import numpy as np

from repro.algorithms.bfs import bfs_serial, bfs_xmt, level_work_profile
from repro.algorithms.connectivity import cc_serial, cc_xmt, labels_equivalent
from repro.algorithms.graphs import random_gnp
from repro.analysis.report import Table
from repro.machines.multicore import MulticoreConfig, MulticoreMachine
from repro.machines.xmt import XmtConfig, XmtMachine


def graph():
    # big enough that frontiers fill hundreds of TCUs; the UMA round-trip
    # latency otherwise caps the measurable speedup (Amdahl on memory)
    return random_gnp(1000, 0.01, seed=11)


def tcu_sweep():
    g = graph()
    ref = bfs_serial(g, 0)
    rows = []
    serial_cycles = None
    for tcus in (1, 4, 16, 64, 256):
        xm = XmtMachine(4 * g.n + 1, XmtConfig(n_tcus=tcus))
        res, xm = bfs_xmt(g, 0, xm)
        assert np.array_equal(res.dist, ref.dist)
        if tcus == 1:
            serial_cycles = xm.result.cycles
        mem_cycles = xm.result.rounds * xm.config.mem_latency_cycles
        rows.append(
            (tcus, xm.result.cycles, serial_cycles / xm.result.cycles,
             mem_cycles / xm.result.cycles)
        )
    return rows


def test_bench_xmt_scaling(benchmark, record_table):
    rows = benchmark.pedantic(tcu_sweep, rounds=1, iterations=1)
    tbl = Table(
        "C13a: XMT BFS cycles vs TCU count (G(1000, 0.01))",
        ["TCUs", "cycles", "speedup vs 1 TCU", "UMA latency share"],
    )
    for tcus, cycles, sp, mem_share in rows:
        tbl.add_row(tcus, cycles, round(sp, 2), f"{mem_share:.0%}")
    speedups = [r[2] for r in rows]
    assert speedups == sorted(speedups)  # monotone scaling
    assert speedups[-1] > 4  # real parallel speedup at this toy size
    # the saturation is the uniform-memory round trip, not lack of
    # parallelism: at 256 TCUs memory latency dominates the cycle count
    assert rows[-1][3] > 0.5

    # the claim's 4-5 orders combines throughput scaling with the per-op
    # energy advantage of simple TCUs over OoO cores; report both factors
    record_table("c13_xmt_scaling", tbl, _combined_factor_table(rows, XmtConfig()))


def _combined_factor_table(rows, cfg):
    from repro.machines.technology import TECH_5NM

    per_op_ooo = TECH_5NM.instruction_energy_word_fj()
    per_op_tcu = TECH_5NM.add_energy_word_fj() * (
        1.0 + TECH_5NM.instruction_overhead_factor / cfg.overhead_reduction
    )
    energy_adv = per_op_ooo / per_op_tcu
    throughput = rows[-1][2]
    tbl2 = Table(
        "C13a': factors toward the 4-5 orders-of-magnitude claim",
        ["factor", "value"],
    )
    tbl2.add_row("measured throughput speedup (256 TCUs, this input)",
                 round(throughput, 2))
    tbl2.add_row("per-op energy advantage (TCU vs OoO core)",
                 round(energy_adv, 1))
    tbl2.add_row("combined energy-delay advantage",
                 round(throughput * energy_adv, 1))
    tbl2.add_row(
        "note",
        "full 4-5 orders needs frontiers >> TCUs (problem scaling); the "
        "bench measures the trend and its limiting factor (UMA latency)",
    )
    return tbl2


def sync_gap():
    g = graph()
    levels = level_work_profile(g, 0)
    ref = bfs_serial(g, 0)

    xm = XmtMachine(4 * g.n + 1, XmtConfig(n_tcus=64))
    _, xm = bfs_xmt(g, 0, xm)

    mc = MulticoreMachine(MulticoreConfig(n_cores=8))
    mc_res = mc.run_phases(levels, instructions_per_item=8)

    xmt_sync = xm.result.spawn_blocks * xm.config.spawn_overhead_cycles
    mc_sync = mc_res.barriers * mc.config.barrier_cycles
    return {
        "levels": ref.levels,
        "xmt_cycles": xm.result.cycles,
        "xmt_sync": xmt_sync,
        "mc_cycles": mc_res.cycles,
        "mc_sync": mc_sync,
    }


def test_bench_sync_overhead_gap(benchmark, record_table):
    r = benchmark.pedantic(sync_gap, rounds=1, iterations=1)
    tbl = Table(
        "C13b: synchronization cost, XMT spawn vs multicore barrier (BFS)",
        ["machine", "levels", "sync cycles", "total cycles", "sync share"],
    )
    tbl.add_row("xmt (64 tcus)", r["levels"], r["xmt_sync"], r["xmt_cycles"],
                f"{r['xmt_sync'] / r['xmt_cycles']:.1%}")
    tbl.add_row("multicore (8 cores)", r["levels"], r["mc_sync"], r["mc_cycles"],
                f"{r['mc_sync'] / r['mc_cycles']:.1%}")
    assert r["mc_sync"] > 50 * r["xmt_sync"]
    record_table("c13_sync_gap", tbl)


def test_bench_connectivity_xmt(benchmark, record_table):
    """The second irregular workload: connectivity matches the serial
    oracle and scales with TCUs."""

    def run():
        g = random_gnp(200, 0.03, seed=5)
        ser = cc_serial(g)
        rows = []
        for tcus in (8, 64):
            xm = XmtMachine(g.n + 1, XmtConfig(n_tcus=tcus))
            labels, xm = cc_xmt(g, xm)
            assert labels_equivalent(ser, labels)
            rows.append((tcus, xm.result.cycles, xm.result.ps_ops))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    tbl = Table(
        "C13c: XMT connected components (G(200, 0.03))",
        ["TCUs", "cycles", "ps ops"],
    )
    for row in rows:
        tbl.add_row(*row)
    assert rows[1][1] < rows[0][1]  # more TCUs, fewer cycles
    record_table("c13_connectivity", tbl)
