"""Claim C12: communication avoidance as "a first-class optimization
target, reducing both data movement volume and number of distinct events"
(Section 6, Yelick; Section 3 credits "Demmel's communication avoiding
algorithms").

Workload: distributed n x n matmul.  SUMMA is the conventional baseline;
Cannon restructures to nearest-neighbour messages; 2.5D spends c-fold
memory replication to cut volume by ~sqrt(c) — the canonical
communication-avoiding tradeoff.  All three run for real (verified against
numpy) while every word and message is counted.
"""

import numpy as np

from repro.algorithms.matmul import cannon, comm_volume_bound, matmul_25d, summa
from repro.analysis.report import Table

N = 32


def mats():
    rng = np.random.default_rng(3)
    a = rng.normal(size=(N, N))
    b = rng.normal(size=(N, N))
    return a, b, a @ b


def volume_table():
    a, b, want = mats()
    rows = []
    for label, fn in (
        ("summa p=64", lambda: summa(a, b, 64)),
        ("cannon p=64", lambda: cannon(a, b, 64)),
        # p/c must itself form a square grid, hence c = 4
        ("2.5d p=64 c=4", lambda: matmul_25d(a, b, 64, 4)),
    ):
        c, stats = fn()
        assert np.allclose(c, want)
        rows.append((label, stats.words_total, stats.messages,
                     stats.words_per_proc_max))
    return rows


def test_bench_volumes(benchmark, record_table):
    rows = benchmark.pedantic(volume_table, rounds=1, iterations=1)
    tbl = Table(
        f"C12a: distributed {N}x{N} matmul — measured communication",
        ["algorithm", "words total", "messages", "max words/proc"],
    )
    by_label = {}
    for row in rows:
        tbl.add_row(*row)
        by_label[row[0]] = row
    # replication reduces BOTH volume and message count (the claim's
    # "data movement volume and number of distinct events")
    for baseline in ("cannon p=64", "summa p=64"):
        assert by_label["2.5d p=64 c=4"][1] < by_label[baseline][1]
        assert by_label["2.5d p=64 c=4"][2] < by_label[baseline][2]
    record_table("c12_volumes", tbl)


def test_bench_scaling_law(benchmark, record_table):
    """Series: volume ~ n^2 sqrt(p) for Cannon; ~ n^2 sqrt(p/c) for 2.5D."""

    def sweep():
        a, b, want = mats()
        rows = []
        for p in (4, 16, 64):
            if N % int(np.sqrt(p)):
                continue
            c, stats = cannon(a, b, p)
            assert np.allclose(c, want)
            rows.append((p, stats.words_total, comm_volume_bound(N, p)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    tbl = Table(
        f"C12b: Cannon volume vs P at n={N} (law: n^2 sqrt(p))",
        ["p", "measured words", "n^2 sqrt(p)", "measured/law"],
    )
    consts = []
    for p, words, law in rows:
        tbl.add_row(p, words, law, words / law)
        consts.append(words / law)
    # the constant stays within 2x across the sweep: right scaling law
    assert max(consts) / min(consts) < 2.0
    record_table("c12_scaling", tbl)


def test_bench_memory_for_communication_tradeoff(benchmark, record_table):
    """Ablation: the 2.5D c-sweep — each doubling of memory cuts shift
    volume, until replication itself dominates."""

    def sweep():
        a, b, want = mats()
        rows = []
        for c_factor in (1, 4, 16):  # p/c stays a square grid
            got, stats = matmul_25d(a, b, 64, c_factor)
            assert np.allclose(got, want)
            rows.append((c_factor, stats.words_total, stats.messages))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    tbl = Table(
        "C12 ablation: 2.5D replication sweep (p=64)",
        ["c (replicas)", "words total", "messages"],
    )
    for row in rows:
        tbl.add_row(*row)
    assert rows[1][1] < rows[0][1]  # c=2 beats c=1
    record_table("c12_replication", tbl)
