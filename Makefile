# Convenience targets; see README for details.

.PHONY: install test bench experiments examples all

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments: bench
	python tools/gen_experiments.py

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done; echo "all examples ran"

all: install test experiments examples
