# Convenience targets; see README for details.

PYTHONPATH_SRC = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test bench bench-json bench-gate obs-overhead trace serve serve-smoke experiments examples all

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Run the full bench suite and list the machine-readable artifacts it
# produced: per-table rows (out/<name>.json) and per-module telemetry
# dumps (out/<module>.metrics.json).
bench-json:
	$(PYTHONPATH_SRC) python -m pytest benchmarks/ --benchmark-only -q
	@echo "machine-readable bench artifacts:"
	@ls -1 benchmarks/out/*.json

# Perf-trajectory gate: run the C21 smoke bench and compare its metrics
# JSON against the recorded baseline (override with BASE=path.json).
# Warn-only here and in CI's first run; record a baseline with
#   cp benchmarks/out/c21_compiled_core.main.json .bench-baseline/
bench-gate:
	$(PYTHONPATH_SRC) python benchmarks/bench_c21_compiled_core.py --json --smoke
	python tools/bench_gate.py $(or $(BASE),.bench-baseline/c21_compiled_core.main.json) benchmarks/out/c21_compiled_core.main.json --ignore seed --warn-only

# Assert telemetry stays affordable: the instrumented C21 smoke campaign
# must run within 5% of the same campaign with no obs session.
obs-overhead:
	$(PYTHONPATH_SRC) python benchmarks/bench_c22_obs_overhead.py --json --smoke

# Run the paper's worked example under the telemetry layer and print the
# artifact paths (Chrome trace + metrics dump in obs_out/).
trace:
	$(PYTHONPATH_SRC) python examples/paper_worked_example.py --trace

# Start the batched evaluation service on localhost:8077 (see README
# "Serving"); POST JSON to /v1/requests, GET /healthz, /metrics, /stats.
serve:
	$(PYTHONPATH_SRC) python -m repro.serve.server --port 8077 --shards 2

# The CI serving gate: 40 concurrent mixed-kind requests, every one
# served or explicitly shed, served searches oracle-diffed vs direct calls.
serve-smoke:
	$(PYTHONPATH_SRC) python tools/serve_smoke.py --shards 2 --requests 40

experiments: bench
	python tools/gen_experiments.py

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done; echo "all examples ran"

all: install test experiments examples
