"""Blelloch's locality ladder: RAM -> one-level cache -> multilevel cache.

Section 2: the RAM "does not capture the locality that is needed to make
effective use of caches", but "it is easy to add a one level cache", and
cache-oblivious algorithms then "work effectively on a multilevel cache".
This script walks matmul up that ladder, and finishes with the asymmetric
read/write extension the section also mentions.

Run:  python examples/cache_models_tour.py
"""

from repro.algorithms.matmul import trace_blocked, trace_naive, trace_recursive
from repro.analysis.report import Table
from repro.models.asymmetric import asymmetric_cache_cost
from repro.models.cache import HierarchySpec, ideal_cache_misses, multilevel_misses

N = 32  # power of two: the recursive variant requires it
B = 4


def main() -> None:
    print(f"workload: {N}x{N} matmul, word traces, block size B={B}\n")

    # rung 1: the RAM view — all variants identical
    n_ops = 2 * N**3
    print(f"RAM view: every variant performs {n_ops:,} operand reads — "
          "the model cannot tell them apart.\n")

    # rung 2: one-level ideal cache
    tbl = Table(
        "one-level (M, B) ideal cache: misses by algorithm",
        ["M (words)", "naive ijk", "blocked bs=8", "recursive (oblivious)"],
    )
    for m_words in (64, 128, 256):
        tbl.add_row(
            m_words,
            ideal_cache_misses(trace_naive(N), m_words, B),
            ideal_cache_misses(trace_blocked(N, 8), m_words, B),
            ideal_cache_misses(trace_recursive(N, 2), m_words, B),
        )
    tbl.print()

    # rung 3: multilevel hierarchy, same untouched oblivious trace
    specs = (
        HierarchySpec(64, B, 0.5, "L1"),
        HierarchySpec(256, B, 2.0, "L2"),
        HierarchySpec(1024, B, 10.0, "L3"),
    )
    tbl2 = Table(
        "three-level hierarchy: per-level misses",
        ["algorithm", "L1", "L2", "L3"],
    )
    for name, trace in (
        ("naive", trace_naive(N)),
        ("recursive (oblivious)", trace_recursive(N, 2)),
    ):
        tbl2.add_row(name, *multilevel_misses(trace, specs))
    tbl2.print()

    # extension: asymmetric read/write costs (omega-charged writes)
    tbl3 = Table(
        "asymmetric (M, B, omega) cost of the oblivious trace",
        ["omega", "block reads", "block writes", "cost"],
    )
    for omega in (1, 4, 16):
        c = asymmetric_cache_cost(trace_recursive(N, 2), 128, B, omega=omega)
        tbl3.add_row(omega, c.reads, c.writes, c.cost)
    tbl3.print()


if __name__ == "__main__":
    main()
