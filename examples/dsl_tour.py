"""The F&M notation as a language: compile the paper's code, run it.

Section 3 asks "What languages best express functions and mapping...?".
``repro.core.dsl`` answers with the smallest language shaped like the
paper's own fragment.  This script compiles that fragment verbatim, shows
the legality checker rejecting the printed map clause, fixes the clause
with the anti-diagonal skew the prose describes, and runs the result on
the grid machine — then writes a second program (prefix sums) from
scratch to show the language is not a one-trick pony.

Run:  python examples/dsl_tour.py
"""

import numpy as np

from repro.algorithms.edit_distance import paper_table
from repro.analysis.report import Table
from repro.core.dsl import PAPER_EXAMPLE, compile_program
from repro.core.legality import check_legality
from repro.core.mapping import GridSpec
from repro.machines.grid import GridMachine

N, P = 24, 4


def main() -> None:
    print("the paper's fragment, verbatim:")
    print(PAPER_EXAMPLE)

    grid = GridSpec(P, 1)
    prog = compile_program(PAPER_EXAMPLE, {"N": N, "P": P})
    print(f"compiled: {prog.graph}  (cell = {prog.cell_cycles('H')} primitive ops)\n")

    m_literal = prog.build_mapping(grid, inputs_offchip=False)
    rep = check_legality(prog.graph, m_literal, grid)
    print(f"map clause as printed -> legal? {rep.ok}")
    print(f"  e.g. {rep.violations[0]}\n")

    skewed_src = PAPER_EXAMPLE.replace(
        "map H(i, j) at i % P  time floor(i / P) * N + j",
        "map H(i, j) at i % P  time floor(i / P) * N + 2 * (i % P) + j",
    )
    prog2 = compile_program(skewed_src, {"N": N, "P": P})
    m_skew = prog2.build_mapping(grid, inputs_offchip=False)
    rep2 = check_legality(prog2.graph, m_skew, grid)
    print(f"with the marching-anti-diagonal skew -> legal? {rep2.ok}")

    rng = np.random.default_rng(0)
    R = rng.integers(0, 4, size=N).tolist()
    Q = rng.integers(0, 4, size=N).tolist()
    res = GridMachine(grid).run(
        prog2.graph, m_skew,
        {"R": {(i,): R[i] for i in range(N)},
         "Q": {(j,): Q[j] for j in range(N)}},
    )
    want = paper_table(R, Q)
    ok = all(res.outputs[("H", i, j)] == want[i, j]
             for i in range(N) for j in range(N))
    tbl = Table("the compiled program on the grid machine",
                ["metric", "value"])
    tbl.add_row("outputs match the recurrence", ok)
    tbl.add_row("cycles", res.cycles)
    tbl.add_row("energy (fJ)", res.cost.energy_total_fj)
    tbl.add_row("PEs used", res.cost.places_used)
    tbl.print()

    # a second program, from scratch
    scan_src = """
    param N = 16
    input X[N]
    forall i in (0:N-1)  S(i) = S(i-1) + X[i]
    map S(i) at 0 time i
    """
    prog3 = compile_program(scan_src)
    m3 = prog3.build_mapping(GridSpec(1, 1), inputs_offchip=False)
    res3 = GridMachine(GridSpec(1, 1)).run(
        prog3.graph, m3, {"X": lambda i: i + 1}
    )
    got = [res3.outputs[("S", i)] for i in range(16)]
    print(f"prefix-sum program: S = {got[:6]}... "
          f"(correct: {got == list(np.cumsum(range(1, 17)))})")


if __name__ == "__main__":
    main()
