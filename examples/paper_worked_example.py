"""The paper's own worked example, end to end.

Section 3 of the panel paper gives one concrete program::

    Forall i, j in (0:N-1, 0:N-1)
      H(i,j) = min(H(i-1, j-1) + f(R[i],Q[j]), H(i-1,j)+D, H(i,j-1)+I, 0);
    Map H(i,j) at i % P  time floor(i/P)*N + j

This script builds that recurrence as a dataflow graph, tries the mapping
exactly as printed (the legality checker rejects it — dependent rows share
a schedule), then runs the "marching anti-diagonals" mapping the prose
describes, verifies it against the serial DP, and reports the speedup and
the implied hardware.

Run:  python examples/paper_worked_example.py

Pass ``--trace`` (or set ``REPRO_TRACE=1``) to run under an observability
session: a Chrome trace (open in chrome://tracing or Perfetto) and a
metrics dump are written to ``obs_out/`` and their paths printed.
"""

import os
import sys

import numpy as np

from repro.algorithms.edit_distance import (
    edit_distance_graph,
    levenshtein,
    paper_mapping_literal,
    wavefront_mapping,
)
from repro.analysis.report import Table
from repro.core.default_mapper import serial_mapping
from repro.core.legality import check_legality
from repro.core.lowering import lower
from repro.core.mapping import GridSpec
from repro.machines.grid import GridMachine

N, P = 40, 4


def main() -> None:
    rng = np.random.default_rng(2021)
    R = rng.integers(0, 4, size=N).tolist()
    Q = rng.integers(0, 4, size=N).tolist()

    g = edit_distance_graph(N, N, cell="lev")
    grid = GridSpec(P, 1)
    print(f"H(i,j) recurrence as dataflow: {g}\n")

    # 1. the mapping exactly as printed
    literal = paper_mapping_literal(g, N, P)
    report = check_legality(g, literal, grid)
    print("mapping as printed: `at i % P  time floor(i/P)*N + j`")
    print(f"  legal? {report.ok}")
    print(f"  example violation: {report.violations[0]}\n")

    # 2. the marching anti-diagonals the prose describes
    wave = wavefront_mapping(g, N, P, grid)
    assert check_legality(g, wave, grid).ok
    machine = GridMachine(grid)
    res = machine.run(
        g, wave,
        {"R": {(i,): R[i] for i in range(N)},
         "Q": {(j,): Q[j] for j in range(N)}},
    )
    d_serial, _ = levenshtein(R, Q)
    assert res.outputs[("H", N - 1, N - 1)] == d_serial
    print(f"marching anti-diagonals: legal, verified (distance = {d_serial})")

    serial = serial_mapping(g, grid)
    t_serial = serial.makespan(g)
    tbl = Table("the example's numbers", ["metric", "value"])
    tbl.add_row("serial mapping cycles", t_serial)
    tbl.add_row(f"wavefront cycles (P={P})", res.cycles)
    tbl.add_row("speedup", round(t_serial / res.cycles, 2))
    tbl.add_row("energy (fJ)", res.cost.energy_total_fj)
    tbl.add_row("communication share", f"{res.cost.communication_fraction:.1%}")
    tbl.print()

    # 3. see the anti-diagonals actually march
    from repro.analysis.spacetime import render_spacetime

    print(render_spacetime(
        g, wave, grid, width=64,
        title="space-time diagram (each PE lags its neighbour by hop+1):",
    ))
    print()

    # 4. the mapping directly specifies a machine
    spec = lower(g, wave, grid)
    print("the mapping's implied domain-specific architecture:")
    print(f"  {spec.n_pes} PEs, {spec.total_rom_entries} ROM entries, "
          f"{len(spec.wires)} wires ({spec.total_wire_mm:.0f} mm)")


def main_traced() -> None:
    """Run under an obs session and report where the artifacts landed."""
    from repro import obs

    with obs.session(
        label="paper_worked_example", out_dir="obs_out", write_on_exit=False
    ) as sess:
        main()
    paths = sess.write()
    print("\ntelemetry artifacts:")
    print(f"  chrome trace : {paths['trace']}  (open in chrome://tracing)")
    print(f"  metrics dump : {paths['metrics']}  "
          "(summarize with `python -m repro.obs.report summary ...`)")


if __name__ == "__main__":
    if "--trace" in sys.argv or os.environ.get("REPRO_TRACE"):
        main_traced()
    else:
        main()
