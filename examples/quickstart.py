"""Quickstart: the Function-and-Mapping model in five minutes.

Builds a small dataflow program, maps it three ways (serial, default
mapper, hand placement), checks legality, predicts cost, runs it on the
grid machine, and lowers the best mapping to a hardware description —
the full F&M story from the paper's Section 3 on one page.

Run:  python examples/quickstart.py
"""

from repro import (
    DataflowGraph,
    GridMachine,
    GridSpec,
    check_legality,
    default_mapping,
    evaluate_cost,
    serial_mapping,
)
from repro.analysis.report import Table
from repro.core.lowering import lower


def build_function(n: int) -> DataflowGraph:
    """out = sum of squares of an n-element input vector.

    Pure dataflow: "no ordering - other than that imposed by data
    dependencies - is specified".
    """
    g = DataflowGraph()
    squares = []
    for i in range(n):
        x = g.input("x", (i,))
        squares.append(g.op("*", x, x, index=(i,), group="sq"))
    # balanced reduction tree over the squares
    frontier = squares
    while len(frontier) > 1:
        nxt = []
        for k in range(0, len(frontier) - 1, 2):
            nxt.append(g.op("+", frontier[k], frontier[k + 1],
                            index=(k,), group="tree"))
        if len(frontier) % 2:
            nxt.append(frontier[-1])
        frontier = nxt
    g.mark_output(frontier[0], "sum_sq")
    return g


def main() -> None:
    n = 32
    g = build_function(n)
    print(f"function: {g}")
    print(f"  inherent work {g.work()} ops, depth {g.depth()}, "
          f"parallelism {g.parallelism():.1f}\n")

    grid = GridSpec(8, 1)  # 8 PEs in a row, 1 mm apart, 5 nm technology
    machine = GridMachine(grid)
    inputs = {"x": {(i,): i + 1 for i in range(n)}}
    expected = sum((i + 1) ** 2 for i in range(n))

    tbl = Table(
        "three mappings of the same function",
        ["mapping", "legal", "cycles", "energy (fJ)", "comm share", "PEs"],
    )
    for name, mapping in (
        ("serial (one PE)", serial_mapping(g, grid)),
        ("default mapper", default_mapping(g, grid)),
    ):
        report = check_legality(g, mapping, grid)
        cost = evaluate_cost(g, mapping, grid)
        result = machine.run(g, mapping, inputs)
        assert result.outputs["sum_sq"] == expected
        tbl.add_row(
            name,
            report.ok,
            cost.cycles,
            cost.energy_total_fj,
            f"{cost.communication_fraction:.1%}",
            cost.places_used,
        )
    tbl.print()

    # lower the default mapping to a structural hardware description
    spec = lower(g, default_mapping(g, grid), grid)
    print("lowered hardware (mechanical, per the paper):")
    print(spec.render(max_rom_lines=3))


if __name__ == "__main__":
    main()
