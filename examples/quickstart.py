"""Quickstart: the Function-and-Mapping model in five minutes.

Builds a small dataflow program through the stable :mod:`repro.api`
facade, maps it two ways (serial, default mapper), checks legality,
predicts cost, runs it on the grid machine, and lowers the best mapping
to a hardware description — the full F&M story from the paper's
Section 3 on one page.

Everything here goes through ``repro.api`` — the same entry point the
benchmarks and the serving layer (``repro-serve``) use, so what you see
is exactly what a served request computes.

Run:  python examples/quickstart.py
"""

from repro import GridMachine, api
from repro.analysis.report import Table
from repro.core.lowering import lower


def main() -> None:
    n = 32
    # "sum_squares" is a registry workload: out = sum of squares of an
    # n-element input vector, squared in parallel then tree-reduced.
    g = api.compile("sum_squares", n=n)
    print(f"function: {g}")
    print(f"  inherent work {g.work()} ops, depth {g.depth()}, "
          f"parallelism {g.parallelism():.1f}\n")

    machine = api.MachineSpec(8, 1)  # 8 PEs in a row, 5 nm technology
    runner = GridMachine(machine.grid())
    inputs = {"x": {(i,): i + 1 for i in range(n)}}
    expected = sum((i + 1) ** 2 for i in range(n))

    tbl = Table(
        "two mappings of the same function",
        ["mapping", "legal", "cycles", "energy (fJ)", "comm share", "PEs"],
    )
    for name, mapper in (("serial (one PE)", "serial"),
                         ("default mapper", "default")):
        res = api.evaluate("sum_squares", machine, mapper=mapper,
                           check=True, n=n)
        result = runner.run(g, res.mapping, inputs)
        assert result.outputs["sum_sq"] == expected
        tbl.add_row(
            name,
            res.legality.ok,
            res.cost.cycles,
            res.cost.energy_total_fj,
            f"{res.cost.communication_fraction:.1%}",
            res.cost.places_used,
        )
    tbl.print()

    # search the mapping space for the energy-delay-product winner
    best = api.search("sum_squares", machine, fom={"time": 1, "energy": 1},
                      n=n)[0]
    print(f"\nbest EDP mapping from the sweep: {best.label} "
          f"({best.cost.cycles} cycles, {best.cost.energy_total_fj:.0f} fJ)")

    # lower the default mapping to a structural hardware description
    default = api.evaluate("sum_squares", machine, n=n)
    spec = lower(g, default.mapping, machine.grid())
    print("\nlowered hardware (mechanical, per the paper):")
    print(spec.render(max_rom_lines=3))


if __name__ == "__main__":
    main()
