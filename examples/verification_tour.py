"""Full-stack verification: Martonosi's post-ISA agenda, demonstrated.

Section 4 advocates "formal specifications that support automated
full-stack verification for correctness and security."  Here the formal
specification is the dataflow graph; the stack below it is mapping ->
hardware description.  This script:

1.  lowers a reduction to hardware and verifies the design five ways
    (coverage, occupancy, wiring, timing, functional equivalence under
    several execution orders);
2.  serializes the hardware spec to JSON and re-verifies the round trip
    (the artifact an RTL backend would consume is itself checkable);
3.  injects single faults — a dropped wire, a retimed ROM entry, a
    corrupted opcode — and shows each one caught, with the failing check
    named.

Run:  python examples/verification_tour.py
"""

from repro.analysis.report import Table
from repro.core.idioms import build_reduce
from repro.core.lowering import HardwareSpec, lower
from repro.core.mapping import GridSpec
from repro.core.verify import MUTATION_KINDS, mutate_spec, verify_lowering


def main() -> None:
    grid = GridSpec(4, 1)
    idiom = build_reduce(16, 4, grid)
    g, m = idiom.graph, idiom.mapping
    spec = lower(g, m, grid)
    print(f"design: reduce-16 lowered to {spec.n_pes} PEs, "
          f"{spec.total_rom_entries} ROM entries, {len(spec.wires)} wires\n")

    res = verify_lowering(g, m, spec, grid,
                          inputs={"A": {(i,): i + 1 for i in range(16)}},
                          orders=("id", "reverse", "shuffle-1"))
    print("clean design:")
    print(res.describe())
    print(f"hardware-level output: {res.outputs['reduce']} "
          f"(expected {sum(range(1, 17))})\n")

    clone = HardwareSpec.from_json(spec.to_json())
    res2 = verify_lowering(g, m, clone, grid)
    print(f"JSON round trip re-verifies: {res2.ok}\n")

    tbl = Table("single-fault mutants vs the verifier",
                ["fault kind", "caught", "failing checks"])
    for kind in MUTATION_KINDS:
        try:
            mutant = mutate_spec(spec, kind, seed=0)
        except ValueError:
            tbl.add_row(kind, "n/a", "no site in this design")
            continue
        vres = verify_lowering(g, m, mutant, grid)
        tbl.add_row(kind, not vres.ok,
                    ", ".join(sorted({c.name for c in vres.failed()})) or "-")
    tbl.print()


if __name__ == "__main__":
    main()
