"""Hidden parallelism: Blelloch's random-order result + mini-Ligra.

Two demonstrations from Blelloch's research program as quoted in the
paper's bio section:

1.  "taking sequential algorithms and understanding that they are actually
    parallel when applied to inputs in a random order" — run unchanged
    sequential greedy coloring / BST insertion, record the iteration
    dependence DAG, and watch the depth collapse from n (sorted order) to
    ~log n (random order);
2.  "graph-processing frameworks, such as Ligra" — BFS written in a dozen
    lines over edge_map, with the framework's sparse/dense direction
    switching visible in the stats.

Run:  python examples/hidden_parallelism.py
"""

import numpy as np

from repro.algorithms.graphs import path_graph, random_gnp
from repro.algorithms.incremental import bst_depth, greedy_coloring, random_order
from repro.algorithms.ligra import bfs
from repro.analysis.report import Table


def main() -> None:
    # part 1: the same sequential code, two orders
    tbl = Table(
        "dependence depth of unchanged sequential algorithms (path graph)",
        ["n", "coloring: sorted order", "coloring: random order",
         "BST: sorted", "BST: random"],
    )
    for n in (64, 256, 1024):
        g = path_graph(n)
        cs = greedy_coloring(g, np.arange(n)).depth
        cr = greedy_coloring(g, random_order(n, 1)).depth
        bs = bst_depth(np.arange(n)).depth
        br = bst_depth(np.random.default_rng(1).permutation(n)).depth
        tbl.add_row(n, cs, cr, bs, br)
    tbl.print()
    print("sorted columns grow like n; random columns like log n — the\n"
          "algorithm was parallel all along, the order was the problem.\n")

    # part 2: mini-Ligra
    g = random_gnp(400, 0.03, seed=9)
    dist, parent, stats = bfs(g, 0)
    reached = int((dist >= 0).sum())
    tbl2 = Table("BFS over edge_map (mini-Ligra)", ["metric", "value"])
    tbl2.add_row("vertices reached", reached)
    tbl2.add_row("levels", int(dist.max()) + 1)
    tbl2.add_row("sparse edge_map calls", stats.sparse_calls)
    tbl2.add_row("dense edge_map calls", stats.dense_calls)
    tbl2.add_row("edges examined", stats.edges_examined)
    tbl2.add_row("2m (upper bound w/o switching)", 2 * g.m)
    tbl2.print()
    print("mode sequence:", " ".join(stats.modes))


if __name__ == "__main__":
    main()
