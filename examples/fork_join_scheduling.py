"""Work-depth in practice: write fork-join code, measure W and D, schedule.

Blelloch's preferred stack: a fork-join program is analyzed into a
computation DAG; Brent's theorem brackets its running time on P workers;
the schedulers then realize (or miss) the bound.  This script does all of
it for parallel mergesort.

Run:  python examples/fork_join_scheduling.py
"""

import numpy as np

from repro.algorithms.sort import mergesort_fork_join
from repro.analysis.brent import check_schedule
from repro.analysis.report import Table
from repro.models.workdepth import brent_bounds
from repro.runtime.scheduler import (
    centralized_queue_schedule,
    greedy_schedule,
    work_stealing_schedule,
)


def main() -> None:
    rng = np.random.default_rng(0)
    vals = rng.integers(0, 10_000, size=512).tolist()

    res = mergesort_fork_join(vals)
    assert res.value == sorted(vals)
    w, d = res.work, res.span
    print(f"mergesort of 512: work W = {w}, span D = {d}, "
          f"parallelism W/D = {w / d:.1f}\n")

    tbl = Table(
        "schedulers vs Brent's bounds",
        ["P", "lower", "greedy", "stealing", "central q (pen=20)", "upper",
         "greedy speedup"],
    )
    for p in (1, 2, 4, 8, 16, 32):
        lo, hi = brent_bounds(w, d, p)
        g = greedy_schedule(res.dag, p)
        ws = work_stealing_schedule(res.dag, p, seed=1)
        cq = centralized_queue_schedule(res.dag, p, dequeue_penalty=20)
        chk = check_schedule(res.dag, g)
        assert chk.within_greedy_bounds
        tbl.add_row(p, lo, g.length, ws.length, cq.length, hi,
                    round(chk.speedup, 2))
    tbl.print()

    print("note the centralized queue: with a dequeue penalty, extra "
          "workers stop helping — Yelick's 'heavyweight mechanisms' point.")

    # serial vs parallel merge: the span ablation
    par = mergesort_fork_join(vals, parallel_merge=True)
    ser = mergesort_fork_join(vals, parallel_merge=False)
    tbl2 = Table("merge strategy ablation", ["variant", "work", "span",
                                             "parallelism"])
    for name, r in (("parallel merge", par), ("serial merge", ser)):
        tbl2.add_row(name, r.work, r.span, round(r.work / r.span, 1))
    tbl2.print()


if __name__ == "__main__":
    main()
