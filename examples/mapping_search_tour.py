"""Tour of the mapping space: search, Pareto frontier, recomputation.

Section 3's research agenda in one script: take one function (a 1-D
stencil), enumerate mappings "from completely serial to minimum-depth
parallel", search them against three figures of merit, extract the
time/energy/footprint Pareto frontier, and let the recompute optimizer
trade wires for arithmetic.

Run:  python examples/mapping_search_tour.py
"""

from repro.algorithms.stencil import stencil_graph
from repro.analysis.pareto import pareto_front
from repro.analysis.report import Table
from repro.core.mapping import GridSpec
from repro.core.recompute import auto_rematerialize
from repro.core.search import FigureOfMerit, anneal, sweep_placements


def main() -> None:
    g = stencil_graph(48, 3)
    grid = GridSpec(8, 1)
    print(f"function: 48-cell stencil, 3 timesteps — {g}")
    print(f"  work {g.work()}, depth {g.depth()}, "
          f"parallelism {g.parallelism():.1f}\n")

    # 1. the structured sweep + annealing
    swept = sweep_placements(g, grid, FigureOfMerit.edp())
    annealed = anneal(g, grid, FigureOfMerit.edp(), steps=400, seed=0)
    points = swept + [annealed]

    tbl = Table(
        "mapping space (sorted by energy-delay product)",
        ["mapping", "cycles", "energy fJ", "footprint words", "EDP"],
    )
    for r in sorted(points, key=lambda r: r.fom):
        tbl.add_row(r.label, r.cost.cycles, r.cost.energy_total_fj,
                    r.cost.footprint_words, r.fom)
    tbl.print()

    # 2. the Pareto frontier over (time, energy, footprint)
    front = pareto_front(points, lambda r: r.metrics())
    tbl2 = Table(
        "pareto frontier (no point improves one metric without losing another)",
        ["mapping", "cycles", "energy fJ", "footprint words"],
    )
    for r in front:
        tbl2.add_row(r.label, r.cost.cycles, r.cost.energy_total_fj,
                     r.cost.footprint_words)
    tbl2.print()

    # 3. winner depends on what you optimize
    tbl3 = Table("winner by figure of merit", ["FoM", "winner", "cycles",
                                               "energy fJ"])
    for name, fom in (("time", FigureOfMerit.fastest()),
                      ("energy", FigureOfMerit.lowest_energy()),
                      ("EDP", FigureOfMerit.edp())):
        best = sweep_placements(g, grid, fom)[0]
        tbl3.add_row(name, best.label, best.cost.cycles,
                     best.cost.energy_total_fj)
    tbl3.print()

    # 4. recomputation instead of communication
    best_time = sweep_placements(g, grid, FigureOfMerit.fastest())[0]
    remat = auto_rematerialize(g, best_time.mapping, grid)
    print("recompute-vs-communicate pass on the fastest mapping:")
    print(f"  clones made: {remat.clones_made}")
    print(f"  energy before: {remat.energy_before_fj:,.0f} fJ")
    print(f"  energy after:  {remat.energy_after_fj:,.0f} fJ")


if __name__ == "__main__":
    main()
