"""The panel debate, quantified: one irregular workload, four machines.

Runs level-synchronous BFS — Vishkin's canonical irregular PRAM algorithm
— through every abstraction the panelists champion or attack:

*  the **serial RAM** (the FIFO-queue BFS the field standardized on);
*  the **PRAM** (lock-step, CRCW-arbitrary parent selection);
*  **XMT** (PRAM-on-chip: virtual threads + hardware prefix-sum);
*  the **conventional multicore** (static chunking + barrier per level).

Each machine reports the costs its own advocates care about, and the
script prints them side by side — the panel's argument as a table.

Run:  python examples/architecture_debate.py
"""

import numpy as np

from repro.algorithms.bfs import (
    bfs_level_sync,
    bfs_pram,
    bfs_serial,
    bfs_xmt,
    level_work_profile,
)
from repro.algorithms.graphs import random_gnp
from repro.analysis.report import Table
from repro.machines.multicore import MulticoreConfig, MulticoreMachine
from repro.machines.technology import TECH_5NM
from repro.machines.xmt import XmtConfig, XmtMachine


def main() -> None:
    g = random_gnp(500, 0.015, seed=7)
    src = 0
    ref = bfs_serial(g, src)
    print(f"graph: {g.n} vertices, {g.m} edges, "
          f"{ref.levels} BFS levels from vertex {src}\n")

    # serial RAM view: work = edge inspections
    serial_work = ref.edge_inspections + g.n

    # PRAM view: work & steps
    pram_res, pram = bfs_pram(g, src, n_processors=64)
    assert np.array_equal(pram_res.dist, ref.dist)

    # XMT view: cycles with hardware spawn/prefix-sum
    xm = XmtMachine(4 * g.n + 1, XmtConfig(n_tcus=64))
    xmt_res, xm = bfs_xmt(g, src, xm)
    assert np.array_equal(xmt_res.dist, ref.dist)

    # multicore view: bulk-synchronous phases with barriers
    mc = MulticoreMachine(MulticoreConfig(n_cores=8))
    mc_res = mc.run_phases(level_work_profile(g, src), instructions_per_item=8)

    tbl = Table(
        "BFS on four abstractions (same graph, same distances)",
        ["machine", "native cost measure", "value", "sync mechanism",
         "sync cost (cycles)"],
    )
    tbl.add_row("serial RAM", "instructions", serial_work, "none (FIFO)", 0)
    tbl.add_row("PRAM (64 procs)", "lock-step steps", pram.steps,
                "implicit lock-step", 0)
    tbl.add_row("XMT (64 TCUs)", "cycles", xm.result.cycles,
                f"{xm.result.spawn_blocks} hw spawns",
                xm.result.spawn_blocks * xm.config.spawn_overhead_cycles)
    tbl.add_row("multicore (8 cores)", "cycles", mc_res.cycles,
                f"{mc_res.barriers} barriers",
                mc_res.barriers * mc.config.barrier_cycles)
    tbl.print()

    # the energy side of the argument (Dally's numbers)
    tbl2 = Table(
        "energy per executed operation (the other axis of the debate)",
        ["machine", "fJ per op", "vs bare add"],
    )
    add = TECH_5NM.add_energy_word_fj()
    ooo = TECH_5NM.instruction_energy_word_fj()
    tcu = add * (1 + TECH_5NM.instruction_overhead_factor
                 / xm.config.overhead_reduction)
    tbl2.add_row("bare 32-bit add (the physics)", add, 1.0)
    tbl2.add_row("XMT TCU instruction", tcu, round(tcu / add, 1))
    tbl2.add_row("OoO multicore instruction", ooo, round(ooo / add, 1))
    tbl2.print()

    # non-determinism, contained: different parent rules, same distances
    pri = bfs_level_sync(g, src, "priority")
    arb = bfs_level_sync(g, src, "arbitrary", seed=3)
    same_dist = np.array_equal(pri.dist, arb.dist)
    same_parents = np.array_equal(pri.parent, arb.parent)
    print(f"parent rules priority vs arbitrary: distances equal = {same_dist}, "
          f"parents equal = {same_parents} (the 'limited non-determinism')")


if __name__ == "__main__":
    main()
